"""M-tree: a dynamic, balanced index for general metric spaces.

Implements the structure of Ciaccia, Patella and Zezula (VLDB 1997), which
the MRkNNCoP baseline builds on.  Every node holds up to ``capacity``
entries; internal entries are *routing objects* — a center point, a covering
radius bounding the subtree, and the distance to the parent center — and
leaf entries are data points with their distance to the parent center.

Insertion descends to the leaf whose routing ball needs the least
enlargement; overflowing nodes are split with the mM_RAD promotion policy
(sample candidate promotion pairs, partition by generalized hyperplane,
minimize the larger covering radius).  Splits propagate upward, growing a
new root when the old one overflows, so the tree stays balanced.

The incremental search is best-first over the bound

    d(q, y) >= max(0, d(q, center) - radius)        for y under a routing entry,

which is exact for any metric by the triangle inequality.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.indexes.batch_tools import (
    KSmallestKeeper,
    check_exclude_indices,
    mask_excluded,
)
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    as_query_point,
    as_query_rows,
    check_k,
    check_positive_int,
)

__all__ = ["MTreeIndex"]


class _Entry:
    """Routing entry (points at a child node) or leaf entry (a data point)."""

    __slots__ = ("center_id", "radius", "child", "dist_to_parent")

    def __init__(
        self,
        center_id: int,
        radius: float = 0.0,
        child: Optional["_MNode"] = None,
    ) -> None:
        self.center_id = center_id
        self.radius = radius
        self.child = child
        self.dist_to_parent = 0.0

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None


class _MNode:
    __slots__ = ("is_leaf", "entries", "parent_entry", "parent_node")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []
        self.parent_entry: Optional[_Entry] = None
        self.parent_node: Optional["_MNode"] = None


class MTreeIndex(Index):
    """Dynamic M-tree supporting incremental forward NN search."""

    name = "m-tree"
    supports_insert = True
    supports_remove = True  # lazy removal: points are masked, not detached

    def __init__(self, data, metric=None, capacity: int = 32, seed=0) -> None:
        super().__init__(data, metric)
        self.capacity = check_positive_int(capacity, name="capacity")
        if self.capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        self._rng = ensure_rng(seed)
        self._root = _MNode(is_leaf=True)
        for point_id in range(self._points.shape[0]):
            self._insert_id(point_id)

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------
    def _dist_ids(self, a: int, b: int) -> float:
        return self.metric.distance(self._points[a], self._points[b])

    def _insert_id(self, point_id: int) -> None:
        node = self._root
        # Descend to a leaf, enlarging covering radii along the way.
        while not node.is_leaf:
            best: Optional[_Entry] = None
            best_key = (1, np.inf)  # (needs enlargement?, distance or enlargement)
            for entry in node.entries:
                d = self._dist_ids(entry.center_id, point_id)
                key = (0, d) if d <= entry.radius else (1, d - entry.radius)
                if key < best_key:
                    best, best_key = entry, key
            d_center = self._dist_ids(best.center_id, point_id)
            if d_center > best.radius:
                best.radius = d_center
            node = best.child
        entry = _Entry(point_id)
        if node.parent_entry is not None:
            entry.dist_to_parent = self._dist_ids(
                node.parent_entry.center_id, point_id
            )
        node.entries.append(entry)
        if len(node.entries) > self.capacity:
            self._split(node)

    def _split(self, node: _MNode) -> None:
        entries = node.entries
        ids = [e.center_id for e in entries]
        promo_a, promo_b = self._promote(ids)
        group_a: list[_Entry] = []
        group_b: list[_Entry] = []
        for entry in entries:
            d_a = self._dist_ids(promo_a, entry.center_id)
            d_b = self._dist_ids(promo_b, entry.center_id)
            (group_a if d_a <= d_b else group_b).append(entry)
        # Guard against empty partitions under pathological ties.
        if not group_a:
            group_a.append(group_b.pop())
        if not group_b:
            group_b.append(group_a.pop())

        node_a = _MNode(is_leaf=node.is_leaf)
        node_b = _MNode(is_leaf=node.is_leaf)
        entry_a = self._make_routing_entry(promo_a, group_a, node_a)
        entry_b = self._make_routing_entry(promo_b, group_b, node_b)

        parent = node.parent_node
        if parent is None:
            new_root = _MNode(is_leaf=False)
            self._adopt(new_root, entry_a)
            self._adopt(new_root, entry_b)
            self._root = new_root
            return
        parent.entries.remove(node.parent_entry)
        self._adopt(parent, entry_a)
        self._adopt(parent, entry_b)
        if len(parent.entries) > self.capacity:
            self._split(parent)

    def _promote(self, ids: list[int]) -> tuple[int, int]:
        """mM_RAD-style promotion: sample pairs, pick the best separation."""
        n = len(ids)
        n_samples = min(10, n * (n - 1) // 2)
        best_pair = (ids[0], ids[1])
        best_score = -np.inf
        for _ in range(n_samples):
            i, j = self._rng.choice(n, size=2, replace=False)
            a, b = ids[int(i)], ids[int(j)]
            score = self._dist_ids(a, b)
            if score > best_score:
                best_pair, best_score = (a, b), score
        return best_pair

    def _make_routing_entry(
        self, center_id: int, group: list[_Entry], child: _MNode
    ) -> _Entry:
        child.entries = group
        radius = 0.0
        for entry in group:
            d = self._dist_ids(center_id, entry.center_id)
            entry.dist_to_parent = d
            reach = d if entry.is_leaf_entry else d + entry.radius
            if reach > radius:
                radius = reach
            if not entry.is_leaf_entry:
                entry.child.parent_node = child
        routing = _Entry(center_id, radius=radius, child=child)
        child.parent_entry = routing
        for entry in group:
            if not entry.is_leaf_entry:
                entry.child.parent_entry = entry
        return routing

    def _adopt(self, parent: _MNode, entry: _Entry) -> None:
        parent.entries.append(entry)
        entry.child.parent_node = parent
        entry.child.parent_entry = entry
        if parent.parent_entry is not None:
            entry.dist_to_parent = self._dist_ids(
                parent.parent_entry.center_id, entry.center_id
            )

    @property
    def root(self) -> _MNode:
        """The root node (read-only structural access for analyses built
        on top of the tree, e.g. MRkNNCoP's aggregated bounds)."""
        return self._root

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        queue = MinPriorityQueue()
        queue.push(0.0, self._root)
        while queue:
            key, item = queue.pop()
            if isinstance(item, _MNode):
                for entry in item.entries:
                    d = self.metric.distance(
                        query, self._points[entry.center_id]
                    )
                    if entry.is_leaf_entry:
                        if self._active[entry.center_id]:
                            queue.push(d, int(entry.center_id))
                    else:
                        queue.push(max(0.0, d - entry.radius), entry.child)
            else:
                yield item, key

    def knn_distances(
        self, query_points, k: int, exclude_indices=None
    ) -> np.ndarray:
        """Batched k-th NN distances via a pruned block traversal.

        Each visited node evaluates the active query block against all of
        its entry centers with one pairwise kernel.  Leaf entries feed the
        shared :class:`~repro.indexes.batch_tools.KSmallestKeeper` pool
        directly (removed points' columns are masked to ``inf`` — removal
        is lazy here); routing entries lower the center distances by their
        covering radius to bound the subtree, and query rows whose running
        k-th smallest distance already prunes it are deactivated before
        descending.  Subtrees are visited in ascending mean bound so radii
        shrink before the far ones are attempted.
        """
        k = check_k(k)
        queries = as_query_rows(query_points, dim=self.dim)
        m = queries.shape[0]
        exclude = check_exclude_indices(exclude_indices, m)
        keeper = KSmallestKeeper(m, k)
        if m and self.size:
            rows = np.arange(m, dtype=np.intp)
            self._batch_visit(self._root, rows, np.zeros(m), queries, exclude, keeper)
        return keeper.kth

    def _batch_visit(
        self,
        node: _MNode,
        rows: np.ndarray,
        bounds: np.ndarray,
        queries: np.ndarray,
        exclude: np.ndarray,
        keeper: KSmallestKeeper,
    ) -> None:
        alive = bounds < keeper.kth[rows]
        rows = rows[alive]
        if rows.shape[0] == 0 or not node.entries:
            return
        center_ids = np.asarray(
            [entry.center_id for entry in node.entries], dtype=np.intp
        )
        dists = self.metric.pairwise(queries[rows], self._points[center_ids])
        if node.is_leaf:
            cand = dists
            inactive = ~self._active[center_ids]
            if inactive.any():
                cand[:, inactive] = np.inf
            mask_excluded(cand, center_ids, exclude[rows])
            keeper.update(rows, cand)
            return
        radii = np.asarray([entry.radius for entry in node.entries])
        child_bounds = np.maximum(0.0, dists - radii[None, :])
        for col in np.argsort(child_bounds.mean(axis=0)):
            self._batch_visit(
                node.entries[col].child,
                rows,
                child_bounds[:, col],
                queries,
                exclude,
                keeper,
            )

    def range_count(self, query, radius: float) -> int:
        query = as_query_point(query, dim=self.dim)
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                d = self.metric.distance(query, self._points[entry.center_id])
                if entry.is_leaf_entry:
                    if d <= radius and self._active[entry.center_id]:
                        count += 1
                elif d - entry.radius <= radius:
                    stack.append(entry.child)
        return count

    # ------------------------------------------------------------------
    # Dynamic operations
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        point_id = self._append_point(point)
        self._insert_id(point_id)
        return point_id

    def remove(self, index: int) -> None:
        # Lazy removal: the routing structure keeps the point as a pivot but
        # queries never report it.  Covering radii remain valid upper bounds.
        self._deactivate(index)

    # ------------------------------------------------------------------
    # Invariant checking (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify covering-radius and parent-distance invariants.

        The M-tree guarantee is that every routing ball covers all *points*
        stored beneath it (not that child balls nest inside parent balls —
        insertion does not maintain the stronger property, and the search
        bound does not need it).
        """
        stack: list[tuple[_MNode, Optional[_Entry]]] = [(self._root, None)]
        reported: set[int] = set()
        while stack:
            node, routing = stack.pop()
            assert len(node.entries) <= self.capacity, "node overflow"
            for entry in node.entries:
                if routing is not None:
                    d = self._dist_ids(routing.center_id, entry.center_id)
                    assert abs(d - entry.dist_to_parent) <= 1e-9, (
                        "stale parent distance"
                    )
                if entry.is_leaf_entry:
                    reported.add(entry.center_id)
                else:
                    assert entry.child.parent_entry is entry, "broken child link"
                    subtree_ids = self._collect_points(entry.child)
                    dists = self.metric.to_point(
                        self._points[np.asarray(subtree_ids, dtype=np.intp)],
                        self._points[entry.center_id],
                    )
                    assert float(dists.max()) <= entry.radius + 1e-9, (
                        "covering radius does not cover subtree points"
                    )
                    stack.append((entry.child, entry))
        expected = set(range(self._points.shape[0]))
        assert reported == expected, "leaf entries do not cover all points"

    def _collect_points(self, node: _MNode) -> list[int]:
        ids: list[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            for entry in current.entries:
                if entry.is_leaf_entry:
                    ids.append(entry.center_id)
                else:
                    stack.append(entry.child)
        return ids
