"""RdNN-tree: an R*-tree augmented with aggregated kNN distances.

Reproduces the index of Yang and Lin (ICDE 2001), one of the paper's exact
baselines.  For a fixed neighborhood size ``k`` the tree stores, with every
point, its (precomputed) kNN distance, and with every node the *maximum*
kNN distance within its subtree.  A reverse-kNN query then reduces to
point-in-hypersphere containment:

    x in RkNN(q)  <=>  d(q, x) <= d_k(x),

and a subtree can be pruned whenever ``mindist(q, MBR) > max_dk(subtree)``.

The structure answers exact RkNN queries very quickly, but the paper's
critique — reproduced by the benchmarks — is the cost model: the entire
kNN-distance table must be computed up front (O(n^2) here, days of work for
the paper's Imagenet set), and a separate tree is required for every ``k``.
The index is therefore static: ``insert``/``remove`` are unsupported,
exactly the inflexibility the dynamic methods of Section 2.2 react to.
"""

from __future__ import annotations

import numpy as np

from repro.indexes.base import IndexCapabilityError
from repro.indexes.bulk_knn import bulk_knn_distances
from repro.indexes.r_star_tree import RStarTreeIndex
from repro.utils.tolerance import dist_le, inflate

__all__ = ["RdNNTreeIndex"]


class RdNNTreeIndex(RStarTreeIndex):
    """R*-tree + per-subtree max kNN distance, for one fixed ``k``."""

    name = "rdnn-tree"
    supports_insert = False
    supports_remove = False
    # Static (mutations refused), so the R*-tree's in-place-split hazard
    # can never fire: snapshots are trivially stable.
    snapshot_stable = True

    def __init__(
        self,
        data,
        k: int,
        metric=None,
        capacity: int = 32,
        knn_distances: np.ndarray | None = None,
    ) -> None:
        super().__init__(data, metric=metric, capacity=capacity, bulk_load=True)
        self.k = int(k)
        if knn_distances is None:
            knn_distances = bulk_knn_distances(self._points, k, metric=self.metric)
        else:
            knn_distances = np.asarray(knn_distances, dtype=np.float64)
            if knn_distances.shape != (self._points.shape[0],):
                raise ValueError(
                    "knn_distances must have one entry per point; got shape "
                    f"{knn_distances.shape}"
                )
        # Named kth_distances so the array does not shadow the inherited
        # Index.knn_distances() batch-query method.
        self.kth_distances = knn_distances
        self._node_max_dk: dict[int, float] = {}
        self._aggregate(self.root)

    def _repr_knobs(self) -> str:
        return f"k={self.k}, capacity={self.capacity}"

    def _aggregate(self, node) -> float:
        """Bottom-up computation of the max-kNN-distance node annotations."""
        best = 0.0
        for entry in node.entries:
            if entry.is_point:
                value = float(self.kth_distances[entry.point_id])
            else:
                value = self._aggregate(entry.child)
            if value > best:
                best = value
        self._node_max_dk[id(node)] = best
        return best

    def max_dk(self, node) -> float:
        """The aggregated max kNN distance for a tree node."""
        return self._node_max_dk[id(node)]

    # ------------------------------------------------------------------
    # Reverse kNN query
    # ------------------------------------------------------------------
    def rknn(self, query, exclude_index: int | None = None) -> np.ndarray:
        """Exact reverse kNN of ``query`` for the tree's fixed ``k``.

        Returns ascending point ids.  ``exclude_index`` drops the query
        point itself when the query is a dataset member.
        """
        from repro.utils.validation import as_query_point

        query = as_query_point(query, dim=self.dim)
        result: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if entry.is_point:
                    point_id = entry.point_id
                    if point_id == exclude_index or not self._active[point_id]:
                        continue
                    d = self.metric.distance(query, self._points[point_id])
                    if dist_le(d, float(self.kth_distances[point_id])):
                        result.append(point_id)
                else:
                    bound = self._box_lower_bound(query, entry.lo, entry.hi)
                    if bound <= inflate(self.max_dk(entry.child)):
                        stack.append(entry.child)
        return np.asarray(sorted(result), dtype=np.intp)

    # ------------------------------------------------------------------
    # Static index: dynamic operations refused
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        raise IndexCapabilityError(
            "RdNNTreeIndex is static: kNN-distance annotations cannot be "
            "maintained incrementally (this is the inflexibility the paper's "
            "Section 2 describes)"
        )

    def remove(self, index: int) -> None:
        raise IndexCapabilityError("RdNNTreeIndex is static")
