"""Structure-of-arrays layouts for the tree backends' batched descent.

The object trees (``_Node`` dataclasses) stay the structure of record for
construction, incremental search, and the dynamic operations — but batched
``knn_distances`` descent over Python node objects pays one attribute
lookup, one ``np.clip`` on tiny arrays, and one recursive call per node,
which dominates the traversal once the per-node kernels are fast.  This
module flattens a built tree into contiguous arrays (split dims, split
values, bounds, child offsets, concatenated leaf ids) so the descent
iterates an integer cursor over flat arrays instead.

Layouts are derived data: each tree rebuilds its layout lazily whenever
its structure changed (:attr:`~repro.indexes.kd_tree.KDTreeIndex.insert`
grows boxes in place and may split leaves; compaction rebuilds the tree),
and ``snapshot()`` materializes the layout *before* freezing so the
snapshot shares the arrays zero-copy — a thousand snapshots of a stable
index hold one copy of the node arrays.

The flat descent replicates the recursive ``_batch_visit`` semantics
exactly: bounds are computed for both children of an expanded node in one
stacked kernel (the same values the recursion computes on child entry),
children are pushed far-side-first so the near side is processed first,
and every pop re-checks the node's bound against the current pruning
radii — the same prune decisions in the same order as the recursion,
without the Python frame per node.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro import kernels
from repro.distances import EuclideanMetric, Metric
from repro.kernels import numpy_impl
from repro.indexes.batch_tools import KSmallestKeeper, box_lower_bounds, mask_excluded

__all__ = [
    "FlatBallLayout",
    "FlatKDLayout",
    "ball_flat_descent",
    "flatten_ball",
    "flatten_kd",
    "kd_flat_descent",
    "layout_from_arrays",
    "layout_to_arrays",
]


def _preorder(root) -> list:
    """Object nodes in depth-first preorder (left pushed last, popped first)."""
    nodes = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if not node.is_leaf:
            stack.append(node.right)
            stack.append(node.left)
    return nodes


@dataclass
class FlatKDLayout:
    """Contiguous node arrays for a KD-tree; node 0 is the root.

    ``left``/``right`` hold child node indices (``-1`` marks a leaf);
    leaves own the ``leaf_ids[leaf_start[i]:leaf_end[i]]`` slice.  All
    coordinate arrays carry the tree's storage dtype.
    """

    lo: np.ndarray  # (N, dim)
    hi: np.ndarray  # (N, dim)
    axis: np.ndarray  # (N,) int32, -1 on leaves
    split: np.ndarray  # (N,) storage dtype
    left: np.ndarray  # (N,) int64, -1 on leaves
    right: np.ndarray  # (N,) int64, -1 on leaves
    leaf_start: np.ndarray  # (N,) int64
    leaf_end: np.ndarray  # (N,) int64
    leaf_ids: np.ndarray  # (total leaf slots,) intp
    #: Both children's boxes pre-stacked per internal node, ``(N, 2, dim)``
    #: — the descent's bound kernel reads one slice instead of stacking
    #: two fancy-indexed rows per node.
    child_lo: np.ndarray | None = None
    child_hi: np.ndarray | None = None
    #: Optional per-leaf expansion-kernel stats (see ``_leaf_stats``):
    #: leaf point rows in ``leaf_ids`` order (centered when their leaf's
    #: flag is set), their squared norms, per-node centering means/flags.
    leaf_pts: np.ndarray | None = None
    leaf_yy: np.ndarray | None = None
    leaf_mu: np.ndarray | None = None
    leaf_centered: np.ndarray | None = None
    #: Inverse of ``leaf_ids``: the slot each point id occupies (every
    #: stored id lives in exactly one leaf), for O(rows) exclusion masks.
    id_slot: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        return sum(
            arr.nbytes
            for f in (
                "lo",
                "hi",
                "axis",
                "split",
                "left",
                "right",
                "leaf_start",
                "leaf_end",
                "leaf_ids",
                "child_lo",
                "child_hi",
                "leaf_pts",
                "leaf_yy",
                "leaf_mu",
                "leaf_centered",
                "id_slot",
            )
            if (arr := getattr(self, f)) is not None
        )


@dataclass
class FlatBallLayout:
    """Contiguous node arrays for a ball tree; node 0 is the root."""

    centroids: np.ndarray  # (N, dim)
    radii: np.ndarray  # (N,) storage dtype
    left: np.ndarray  # (N,) int64, -1 on leaves
    right: np.ndarray  # (N,) int64, -1 on leaves
    leaf_start: np.ndarray  # (N,) int64
    leaf_end: np.ndarray  # (N,) int64
    leaf_ids: np.ndarray  # (total leaf slots,) intp
    #: Optional per-leaf expansion-kernel stats (see ``_leaf_stats``).
    leaf_pts: np.ndarray | None = None
    leaf_yy: np.ndarray | None = None
    leaf_mu: np.ndarray | None = None
    leaf_centered: np.ndarray | None = None
    #: Inverse of ``leaf_ids`` (see :class:`FlatKDLayout`).
    id_slot: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        return sum(
            arr.nbytes
            for f in (
                "centroids",
                "radii",
                "left",
                "right",
                "leaf_start",
                "leaf_end",
                "leaf_ids",
                "leaf_pts",
                "leaf_yy",
                "leaf_mu",
                "leaf_centered",
                "id_slot",
            )
            if (arr := getattr(self, f)) is not None
        )


#: kind tag -> layout dataclass, for :func:`layout_from_arrays`.
_LAYOUT_CLASSES = {"kd": FlatKDLayout, "ball": FlatBallLayout}

#: boolean layout fields, re-cast on reconstruction (array transports
#: that round-trip through raw buffers carry them as uint8-compatible)
_BOOL_FIELDS = ("leaf_centered",)


def layout_to_arrays(layout) -> dict:
    """A layout's populated fields as one flat ``{name: ndarray}`` dict.

    The inverse of :func:`layout_from_arrays`; used to publish a layout
    through array transports (``.npz`` files, shared-memory packs) that
    carry named arrays but not dataclasses.  ``None`` fields are simply
    absent from the dict.
    """
    return {
        f.name: arr
        for f in fields(layout)
        if (arr := getattr(layout, f.name)) is not None
    }


def layout_from_arrays(kind: str, arrays: dict):
    """Rebuild a :class:`FlatKDLayout`/:class:`FlatBallLayout` from arrays.

    ``kind`` is ``"kd"`` or ``"ball"``; ``arrays`` maps field names to
    ndarrays (extra keys are ignored, optional fields may be missing).
    The arrays are adopted as-is — read-only views (e.g. shared-memory
    attachments) stay zero-copy, which is the point: every worker
    process descends one physical copy of the node arrays.
    """
    try:
        cls = _LAYOUT_CLASSES[kind]
    except KeyError:
        raise ValueError(
            f"unknown layout kind {kind!r}; known: {sorted(_LAYOUT_CLASSES)}"
        ) from None
    known = {f.name for f in cls.__dataclass_fields__.values()}
    kwargs = {name: arr for name, arr in arrays.items() if name in known}
    for name in _BOOL_FIELDS:
        if kwargs.get(name) is not None and kwargs[name].dtype != np.bool_:
            kwargs[name] = kwargs[name].astype(bool)
    return cls(**kwargs)


def _leaf_arrays(nodes: list) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate leaf id lists into one array plus per-node slice offsets."""
    n = len(nodes)
    leaf_start = np.zeros(n, dtype=np.int64)
    leaf_end = np.zeros(n, dtype=np.int64)
    chunks: list[np.ndarray] = []
    cursor = 0
    for i, node in enumerate(nodes):
        if node.is_leaf:
            ids = np.asarray(node.point_ids, dtype=np.intp)
            leaf_start[i] = cursor
            cursor += ids.shape[0]
            leaf_end[i] = cursor
            chunks.append(ids)
    leaf_ids = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.intp)
    )
    return leaf_start, leaf_end, leaf_ids


def _id_slots(leaf_ids: np.ndarray) -> np.ndarray:
    """Inverse of ``leaf_ids``: the slot holding each point id.

    Every stored id appears in exactly one leaf, so the exclusion mask of
    a leaf visit reduces to one slot-range check per query row instead of
    a broadcast id comparison over the whole candidate block.
    """
    size = int(leaf_ids.max()) + 1 if leaf_ids.shape[0] else 0
    id_slot = np.full(size, -1, dtype=np.int64)
    id_slot[leaf_ids] = np.arange(leaf_ids.shape[0], dtype=np.int64)
    return id_slot


def _leaf_stats(
    leaf_start: np.ndarray,
    leaf_end: np.ndarray,
    leaf_ids: np.ndarray,
    points: np.ndarray,
    metric: Metric | None,
) -> dict:
    """Per-leaf expansion-kernel stats frozen at flatten time.

    For each leaf, replicates exactly the Y-side work of
    :func:`repro.kernels.numpy_impl.euclidean_pairwise` — squared norms,
    mean, and the Y-only centering decision — and stores the leaf's point
    rows (centered when the decision fired) contiguously in ``leaf_ids``
    order.  :func:`_leaf_update` then feeds these to the stats variant of
    the kernel, producing the same bits without the per-call Y passes.
    Only built for the Euclidean metric; other metrics get no stats and
    keep the generic ``metric.pairwise`` path.
    """
    none = {
        "leaf_pts": None,
        "leaf_yy": None,
        "leaf_mu": None,
        "leaf_centered": None,
    }
    if points is None or not isinstance(metric, EuclideanMetric):
        return none
    n = leaf_start.shape[0]
    dim = points.shape[1]
    dtype = points.dtype
    leaf_pts = points[leaf_ids].copy()
    leaf_yy = np.empty(leaf_ids.shape[0], dtype=dtype)
    leaf_mu = np.zeros((n, dim), dtype=dtype)
    leaf_centered = np.zeros(n, dtype=bool)
    for i in range(n):
        s, e = leaf_start[i], leaf_end[i]
        if e <= s:
            continue
        Yc, yy, mu = numpy_impl.euclidean_y_stats(leaf_pts[s:e])
        if mu is not None:
            leaf_pts[s:e] = Yc
            leaf_mu[i] = mu
            leaf_centered[i] = True
        leaf_yy[s:e] = yy
    return {
        "leaf_pts": leaf_pts,
        "leaf_yy": leaf_yy,
        "leaf_mu": leaf_mu,
        "leaf_centered": leaf_centered,
    }


def flatten_kd(root, dim: int, dtype, points=None, metric=None) -> FlatKDLayout:
    """Flatten a KD-tree object graph into a :class:`FlatKDLayout`."""
    nodes = _preorder(root)
    pos = {id(node): i for i, node in enumerate(nodes)}
    n = len(nodes)
    lo = np.empty((n, dim), dtype=dtype)
    hi = np.empty((n, dim), dtype=dtype)
    axis = np.full(n, -1, dtype=np.int32)
    split = np.zeros(n, dtype=dtype)
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    for i, node in enumerate(nodes):
        # Box copies (not views): the live tree grows boxes in place on
        # insert, and the layout must stay the frozen build-time bounds.
        lo[i] = node.lo
        hi[i] = node.hi
        if not node.is_leaf:
            axis[i] = node.axis
            split[i] = node.split
            left[i] = pos[id(node.left)]
            right[i] = pos[id(node.right)]
    leaf_start, leaf_end, leaf_ids = _leaf_arrays(nodes)
    internal = np.flatnonzero(left >= 0)
    child_lo = np.zeros((n, 2, dim), dtype=dtype)
    child_hi = np.zeros((n, 2, dim), dtype=dtype)
    child_lo[internal, 0] = lo[left[internal]]
    child_lo[internal, 1] = lo[right[internal]]
    child_hi[internal, 0] = hi[left[internal]]
    child_hi[internal, 1] = hi[right[internal]]
    return FlatKDLayout(
        lo=lo,
        hi=hi,
        axis=axis,
        split=split,
        left=left,
        right=right,
        leaf_start=leaf_start,
        leaf_end=leaf_end,
        leaf_ids=leaf_ids,
        child_lo=child_lo,
        child_hi=child_hi,
        id_slot=_id_slots(leaf_ids),
        **_leaf_stats(leaf_start, leaf_end, leaf_ids, points, metric),
    )


def flatten_ball(root, dim: int, dtype, points=None, metric=None) -> FlatBallLayout:
    """Flatten a ball-tree object graph into a :class:`FlatBallLayout`."""
    nodes = _preorder(root)
    pos = {id(node): i for i, node in enumerate(nodes)}
    n = len(nodes)
    centroids = np.empty((n, dim), dtype=dtype)
    radii = np.empty(n, dtype=dtype)
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    for i, node in enumerate(nodes):
        centroids[i] = node.centroid
        radii[i] = node.radius
        if not node.is_leaf:
            left[i] = pos[id(node.left)]
            right[i] = pos[id(node.right)]
    leaf_start, leaf_end, leaf_ids = _leaf_arrays(nodes)
    return FlatBallLayout(
        centroids=centroids,
        radii=radii,
        left=left,
        right=right,
        leaf_start=leaf_start,
        leaf_end=leaf_end,
        leaf_ids=leaf_ids,
        id_slot=_id_slots(leaf_ids),
        **_leaf_stats(leaf_start, leaf_end, leaf_ids, points, metric),
    )


def _leaf_update(
    lay,
    idx: int,
    rows: np.ndarray,
    queries: np.ndarray,
    points: np.ndarray,
    active: np.ndarray | None,
    exclude: np.ndarray,
    keeper: KSmallestKeeper,
    metric: Metric,
) -> None:
    s = lay.leaf_start[idx]
    e = lay.leaf_end[idx]
    ids = lay.leaf_ids[s:e]
    if active is None:
        if ids.shape[0] == 0:
            return
        if lay.leaf_yy is not None and kernels.active_backend() == "numpy":
            # Expansion against the stats frozen at flatten time: the same
            # bits as metric.pairwise on this leaf, minus the per-call
            # Y-side passes that dominate narrow leaf blocks.  The
            # compiled backend's fused loop needs no stats and is faster
            # still, so it keeps the dispatched path below.
            cand = kernels.euclidean_pairwise_stats(
                queries[rows],
                lay.leaf_pts[s:e],
                lay.leaf_yy[s:e],
                lay.leaf_mu[idx] if lay.leaf_centered[idx] else None,
            )
            metric.num_calls += rows.shape[0] * ids.shape[0]
        else:
            # Same expansion kernel (and therefore same bits) as the
            # recursive object-tree leaf blocks; for wide row blocks
            # against narrow leaves it moves an order of magnitude less
            # memory than the difference kernel.
            cand = metric.pairwise(queries[rows], points[ids])
        id_slot = lay.id_slot
        if id_slot is not None:
            # Slot-range check per row instead of the broadcast id
            # compare: an id's one slot is in this leaf iff it falls in
            # [s, e), and its column is the slot offset.  Same infs as
            # mask_excluded (leaf slots hold each id exactly once).
            ex = exclude[rows]
            valid = (ex >= 0) & (ex < id_slot.shape[0])
            slot = id_slot[np.where(valid, ex, 0)]
            hit = valid & (slot >= s) & (slot < e)
            if hit.any():
                cand[np.flatnonzero(hit), slot[hit] - s] = np.inf
        else:
            mask_excluded(cand, ids, exclude[rows])
        keeper.update(rows, cand)
        return
    ids = ids[active[ids]]
    if ids.shape[0] == 0:
        return
    cand = metric.pairwise(queries[rows], points[ids])
    mask_excluded(cand, ids, exclude[rows])
    keeper.update(rows, cand)


def kd_flat_descent(
    lay: FlatKDLayout,
    metric: Metric,
    points: np.ndarray,
    active: np.ndarray | None,
    queries: np.ndarray,
    exclude: np.ndarray,
    keeper: KSmallestKeeper,
) -> None:
    """Iterative pruned block traversal over a flat KD layout.

    ``active`` is the live mask (``None`` when every stored id is live and
    the leaf lists can be trusted).  Prune decisions, visit order, and the
    per-leaf keeper updates match the recursive ``_batch_visit`` node for
    node; only the per-node Python overhead is gone.
    """
    m = queries.shape[0]
    rows0 = np.arange(m, dtype=np.intp)
    kth = keeper.kth
    root_bounds = box_lower_bounds(metric, queries, lay.lo[0], lay.hi[0])
    stack: list[tuple[int, np.ndarray, np.ndarray]] = [(0, rows0, root_bounds)]
    left, right, axis_arr, split_arr = lay.left, lay.right, lay.axis, lay.split
    child_lo, child_hi = lay.child_lo, lay.child_hi
    # Inline the Euclidean difference kernel for the per-node child
    # bounds: same subtraction and einsum as metric.boxes_lower_bounds,
    # minus its per-call coercion/accounting overhead (which at ~2 leaves
    # per microsecond of work is a measurable slice of the descent).
    fast_bounds = isinstance(metric, EuclideanMetric)
    bound_calls = 0
    while stack:
        idx, rows, bounds = stack.pop()
        rows = rows[bounds < kth[rows]]
        if rows.shape[0] == 0:
            continue
        li = left[idx]
        if li < 0:
            _leaf_update(
                lay, idx, rows, queries, points, active, exclude, keeper, metric
            )
            continue
        ri = right[idx]
        q = queries[rows]
        # Same values as np.clip against each child box (clip is exactly
        # minimum-of-maximum), reading the boxes pre-stacked at flatten
        # time instead of assembling them per node.
        clipped = np.minimum(
            np.maximum(q[:, None, :], child_lo[idx][None, :, :]),
            child_hi[idx][None, :, :],
        )
        if fast_bounds:
            diff = q[:, None, :] - clipped
            both = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            bound_calls += 2 * rows.shape[0]
        else:
            both = metric.boxes_lower_bounds(q, clipped)
        left_votes = np.count_nonzero(q[:, axis_arr[idx]] <= split_arr[idx])
        if 2 * left_votes >= rows.shape[0]:
            near, near_b, far, far_b = li, both[:, 0], ri, both[:, 1]
        else:
            near, near_b, far, far_b = ri, both[:, 1], li, both[:, 0]
        stack.append((int(far), rows, far_b))
        stack.append((int(near), rows, near_b))
    metric.num_calls += bound_calls


def ball_flat_descent(
    lay: FlatBallLayout,
    metric: Metric,
    points: np.ndarray,
    active: np.ndarray | None,
    queries: np.ndarray,
    exclude: np.ndarray,
    keeper: KSmallestKeeper,
) -> None:
    """Iterative pruned block traversal over a flat ball-tree layout."""
    m = queries.shape[0]
    rows0 = np.arange(m, dtype=np.intp)
    kth = keeper.kth
    stack: list[tuple[int, np.ndarray, np.ndarray]] = [
        (0, rows0, np.zeros(m, dtype=queries.dtype))
    ]
    left, right, centroids, radii = lay.left, lay.right, lay.centroids, lay.radii
    while stack:
        idx, rows, bounds = stack.pop()
        rows = rows[bounds < kth[rows]]
        if rows.shape[0] == 0:
            continue
        li = left[idx]
        if li < 0:
            _leaf_update(
                lay, idx, rows, queries, points, active, exclude, keeper, metric
            )
            continue
        ri = right[idx]
        q = queries[rows]
        to_centroid = metric.to_point_many(q, centroids[(int(li), int(ri)), :])
        left_bounds = np.maximum(0.0, to_centroid[:, 0] - radii[li])
        right_bounds = np.maximum(0.0, to_centroid[:, 1] - radii[ri])
        left_votes = np.count_nonzero(to_centroid[:, 0] <= to_centroid[:, 1])
        if 2 * left_votes >= rows.shape[0]:
            near, near_b, far, far_b = li, left_bounds, ri, right_bounds
        else:
            near, near_b, far, far_b = ri, right_bounds, li, left_bounds
        stack.append((int(far), rows, far_b))
        stack.append((int(near), rows, near_b))
