"""R*-tree with forced reinsertion, plus an STR bulk loader.

The RdNN-Tree baseline [51] and the TPL comparator [43] both live on top of
an R-tree-family index; the paper's scalability story (Section 8.3) hinges on
how this structure degrades with dimensionality [47].  This module implements
the R*-tree of Beckmann et al. (SIGMOD 1990):

* **ChooseSubtree** — minimum overlap enlargement at the leaf level,
  minimum area enlargement above it;
* **overflow treatment** — forced reinsertion of the 30% of entries
  farthest from the node's MBR center, once per level per insertion;
* **R\\* split** — split axis chosen by minimum margin sum, distribution
  chosen by minimum overlap (ties by area).

A Sort-Tile-Recursive (STR) bulk loader is provided for building large trees
quickly in benchmarks; insert-based and bulk-loaded trees answer identical
queries.

Query-side, the tree offers the library-wide incremental-NN protocol.  The
lower bound for a box is ``d(q, clip(q, lo, hi))`` — exact for every
Minkowski metric — so the index composes with the metric abstraction even
though rectangles are only *efficient* for low-dimensional data (which is
precisely the effect the paper's experiments demonstrate).
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.indexes.batch_tools import (
    KSmallestKeeper,
    box_lower_bounds,
    check_exclude_indices,
    mask_excluded,
)
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.validation import (
    as_query_point,
    as_query_rows,
    check_k,
    check_positive_int,
)

__all__ = ["RStarTreeIndex"]


class _Entry:
    """An MBR plus either a child node (internal) or a point id (leaf)."""

    __slots__ = ("lo", "hi", "child", "point_id")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        child: Optional["_RNode"] = None,
        point_id: int = -1,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.child = child
        self.point_id = point_id

    @property
    def is_point(self) -> bool:
        return self.child is None


class _RNode:
    __slots__ = ("is_leaf", "entries", "parent")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []
        self.parent: Optional["_RNode"] = None


def _area(lo: np.ndarray, hi: np.ndarray) -> float:
    return float(np.prod(hi - lo))


def _margin(lo: np.ndarray, hi: np.ndarray) -> float:
    return float((hi - lo).sum())


def _union(entries: list[_Entry]) -> tuple[np.ndarray, np.ndarray]:
    lo = entries[0].lo.copy()
    hi = entries[0].hi.copy()
    for entry in entries[1:]:
        np.minimum(lo, entry.lo, out=lo)
        np.maximum(hi, entry.hi, out=hi)
    return lo, hi


def _overlap(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> float:
    inter = np.minimum(hi_a, hi_b) - np.maximum(lo_a, lo_b)
    if (inter <= 0.0).any():
        return 0.0
    return float(np.prod(inter))


def _overlap_matrix(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> np.ndarray:
    """Pairwise overlap volumes between two stacks of boxes, ``(a, b)``."""
    inter = np.minimum(hi_a[:, None, :], hi_b[None, :, :]) - np.maximum(
        lo_a[:, None, :], lo_b[None, :, :]
    )
    positive = (inter > 0.0).all(axis=2)
    return np.where(positive, np.prod(inter, axis=2), 0.0)


class RStarTreeIndex(Index):
    """R*-tree over point data with incremental NN search."""

    name = "r-star-tree"
    supports_insert = True
    supports_remove = True
    #: Inserts run in-place node splits and forced re-insertions — a
    #: snapshot view sharing the structure can observe a half-split
    #: node.  The Service layer drains readers before mutating.
    snapshot_stable = False

    def __init__(
        self,
        data,
        metric=None,
        capacity: int = 32,
        bulk_load: bool = True,
    ) -> None:
        super().__init__(data, metric)
        self.capacity = check_positive_int(capacity, name="capacity")
        if self.capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        self.min_fill = max(2, int(0.4 * self.capacity))
        self._reinsert_count = max(1, int(0.3 * self.capacity))
        self._height = 1
        self._root = _RNode(is_leaf=True)
        n = self._points.shape[0]
        if bulk_load and n > self.capacity:
            self._root = self._bulk_load(np.arange(n, dtype=np.intp))
        else:
            for point_id in range(n):
                self._insert_entry(self._point_entry(point_id), level=0)

    def _repr_knobs(self) -> str:
        return f"capacity={self.capacity}"

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    def _point_entry(self, point_id: int) -> _Entry:
        p = self._points[point_id]
        return _Entry(p.copy(), p.copy(), point_id=int(point_id))

    def _bulk_load(self, ids: np.ndarray) -> _RNode:
        pts = self._points[ids]
        tiles = self._str_tiles(pts)
        level_nodes: list[_RNode] = []
        los: list[np.ndarray] = []
        his: list[np.ndarray] = []
        for tile in tiles:
            node = _RNode(is_leaf=True)
            for i in tile:
                self._attach(node, self._point_entry(int(ids[i])))
            level_nodes.append(node)
            tile_pts = pts[tile]
            los.append(tile_pts.min(axis=0))
            his.append(tile_pts.max(axis=0))
        self._height = 1
        while len(level_nodes) > 1:
            lo_arr = np.stack(los)
            hi_arr = np.stack(his)
            tiles = self._str_tiles((lo_arr + hi_arr) * 0.5)
            next_nodes: list[_RNode] = []
            next_los: list[np.ndarray] = []
            next_his: list[np.ndarray] = []
            for tile in tiles:
                node = _RNode(is_leaf=False)
                for i in tile:
                    self._attach(
                        node,
                        _Entry(
                            lo_arr[i].copy(), hi_arr[i].copy(), child=level_nodes[i]
                        ),
                    )
                next_nodes.append(node)
                next_los.append(lo_arr[tile].min(axis=0))
                next_his.append(hi_arr[tile].max(axis=0))
            level_nodes, los, his = next_nodes, next_los, next_his
            self._height += 1
        return level_nodes[0]

    def _str_tiles(self, centers: np.ndarray) -> list[np.ndarray]:
        """Sort-Tile-Recursive ordering over entry centers, fully vectorized.

        Returns positional index arrays, one per node: entries sorted
        stably by first-axis center, cut into ~sqrt(n/capacity) vertical
        slabs, each slab sorted stably by the second axis and chunked into
        capacity-sized runs.  The orderings are identical to the historical
        entry-list packer, so bulk-loaded tree shapes are unchanged.
        """
        n = centers.shape[0]
        if n <= self.capacity:
            return [np.arange(n, dtype=np.intp)]
        n_nodes = math.ceil(n / self.capacity)
        order = np.argsort(centers[:, 0], kind="stable")
        # Number of vertical slabs ~ sqrt of the node count.
        n_slabs = max(1, int(math.ceil(math.sqrt(n_nodes))))
        slab_size = math.ceil(n / n_slabs)
        sort_dim = 1 if centers.shape[1] > 1 else 0
        tiles: list[np.ndarray] = []
        for start in range(0, n, slab_size):
            slab = order[start : start + slab_size]
            slab = slab[np.argsort(centers[slab, sort_dim], kind="stable")]
            for node_start in range(0, slab.shape[0], self.capacity):
                tiles.append(slab[node_start : node_start + self.capacity])
        return tiles

    def _attach(self, node: _RNode, entry: _Entry) -> None:
        node.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = node

    # ------------------------------------------------------------------
    # Insertion (R* algorithm)
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        point_id = self._append_point(point)
        self._insert_entry(self._point_entry(point_id), level=0)
        return point_id

    def _insert_entry(self, entry: _Entry, level: int) -> None:
        # One forced-reinsert pass is allowed per level per insertion.
        self._reinserted_levels: set[int] = set()
        self._insert_at_level(entry, level)

    def _insert_at_level(self, entry: _Entry, level: int) -> None:
        node = self._choose_subtree(entry, level)
        self._attach(node, entry)
        if len(node.entries) > self.capacity:
            self._overflow(node, level)

    def _node_level(self, node: _RNode) -> int:
        """Level of a node: leaves are level 0.

        Derived from the maintained ``self._height`` and the node's depth
        (parent-chain length) — O(1) for the root, where the insertion
        descent starts, instead of the historical walk down child pointers
        to a leaf on every single insert.
        """
        depth = 0
        current = node
        while current.parent is not None:
            depth += 1
            current = current.parent
        return self._height - 1 - depth

    def _choose_subtree(self, entry: _Entry, level: int) -> _RNode:
        node = self._root
        depth_remaining = self._node_level(node) - level
        while depth_remaining > 0:
            child_is_leaf = depth_remaining == 1 and node.entries[0].child.is_leaf
            los = np.stack([candidate.lo for candidate in node.entries])
            his = np.stack([candidate.hi for candidate in node.entries])
            enl_lo = np.minimum(los, entry.lo)
            enl_hi = np.maximum(his, entry.hi)
            areas = np.prod(his - los, axis=1)
            enlargements = np.prod(enl_hi - enl_lo, axis=1) - areas
            if child_is_leaf:
                # Minimum overlap enlargement among siblings: each
                # candidate's summed overlap with the other entries, before
                # and after enlargement, in two (f, f) box-intersection
                # kernels with the self-overlap diagonal removed.
                before = _overlap_matrix(los, his, los, his)
                after = _overlap_matrix(enl_lo, enl_hi, los, his)
                overlap_growth = (
                    after.sum(axis=1)
                    - np.diagonal(after)
                    - (before.sum(axis=1) - np.diagonal(before))
                )
                ranking = np.lexsort((areas, enlargements, overlap_growth))
            else:
                ranking = np.lexsort((areas, enlargements))
            best = node.entries[int(ranking[0])]
            np.minimum(best.lo, entry.lo, out=best.lo)
            np.maximum(best.hi, entry.hi, out=best.hi)
            node = best.child
            depth_remaining -= 1
        return node

    def _overflow(self, node: _RNode, level: int) -> None:
        if node is not self._root and level not in self._reinserted_levels:
            self._reinserted_levels.add(level)
            self._force_reinsert(node, level)
        else:
            self._split_node(node)

    def _force_reinsert(self, node: _RNode, level: int) -> None:
        lo, hi = _union(node.entries)
        center = (lo + hi) * 0.5
        dists = [
            float(np.linalg.norm((entry.lo + entry.hi) * 0.5 - center))
            for entry in node.entries
        ]
        order = np.argsort(dists)
        keep = [node.entries[i] for i in order[: -self._reinsert_count]]
        evicted = [node.entries[i] for i in order[-self._reinsert_count :]]
        node.entries = keep
        self._tighten_upward(node)
        for entry in evicted:
            self._insert_at_level(entry, level)

    def _split_node(self, node: _RNode) -> None:
        group_a, group_b = self._rstar_split(node.entries)
        if node is self._root:
            new_root = _RNode(is_leaf=False)
            for group in (group_a, group_b):
                child = _RNode(is_leaf=node.is_leaf)
                for entry in group:
                    self._attach(child, entry)
                lo, hi = _union(group)
                self._attach(new_root, _Entry(lo, hi, child=child))
            self._root = new_root
            self._height += 1
            return
        parent = node.parent
        # Reuse `node` for group A, create a sibling for group B.
        node.entries = []
        for entry in group_a:
            self._attach(node, entry)
        sibling = _RNode(is_leaf=node.is_leaf)
        for entry in group_b:
            self._attach(sibling, entry)
        # Update the parent entry of `node` and add one for the sibling.
        parent_entry = self._find_parent_entry(parent, node)
        parent_entry.lo, parent_entry.hi = _union(node.entries)
        lo, hi = _union(sibling.entries)
        self._attach(parent, _Entry(lo, hi, child=sibling))
        self._tighten_upward(parent)
        if len(parent.entries) > self.capacity:
            self._overflow(parent, self._node_level(parent))

    def _find_parent_entry(self, parent: _RNode, child: _RNode) -> _Entry:
        for entry in parent.entries:
            if entry.child is child:
                return entry
        raise RuntimeError("corrupt tree: child not found in parent")

    def _tighten_upward(self, node: _RNode) -> None:
        current = node
        while current.parent is not None:
            entry = self._find_parent_entry(current.parent, current)
            entry.lo, entry.hi = _union(current.entries)
            current = current.parent

    def _rstar_split(self, entries: list[_Entry]) -> tuple[list[_Entry], list[_Entry]]:
        dim = self.dim
        m = self.min_fill
        best_axis, best_axis_margin = 0, np.inf
        # Choose split axis: minimum total margin over all distributions.
        for axis in range(dim):
            margin_sum = 0.0
            for sorted_entries in self._axis_sorts(entries, axis):
                for split_at in range(m, len(entries) - m + 1):
                    lo_a, hi_a = _union(sorted_entries[:split_at])
                    lo_b, hi_b = _union(sorted_entries[split_at:])
                    margin_sum += _margin(lo_a, hi_a) + _margin(lo_b, hi_b)
            if margin_sum < best_axis_margin:
                best_axis, best_axis_margin = axis, margin_sum
        # Choose distribution on that axis: minimum overlap, ties by area.
        best_split = None
        best_key = None
        for sorted_entries in self._axis_sorts(entries, best_axis):
            for split_at in range(m, len(entries) - m + 1):
                group_a = sorted_entries[:split_at]
                group_b = sorted_entries[split_at:]
                lo_a, hi_a = _union(group_a)
                lo_b, hi_b = _union(group_b)
                key = (
                    _overlap(lo_a, hi_a, lo_b, hi_b),
                    _area(lo_a, hi_a) + _area(lo_b, hi_b),
                )
                if best_key is None or key < best_key:
                    best_split = (list(group_a), list(group_b))
                    best_key = key
        return best_split

    def _axis_sorts(
        self, entries: list[_Entry], axis: int
    ) -> Iterator[list[_Entry]]:
        yield sorted(entries, key=lambda e: (e.lo[axis], e.hi[axis]))
        yield sorted(entries, key=lambda e: (e.hi[axis], e.lo[axis]))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _box_lower_bound(self, query: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
        return self.metric.distance(query, np.clip(query, lo, hi))

    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        queue = MinPriorityQueue()
        queue.push(0.0, self._root)
        while queue:
            key, item = queue.pop()
            if isinstance(item, _RNode):
                for entry in item.entries:
                    if entry.is_point:
                        if self._active[entry.point_id]:
                            dist = self.metric.distance(
                                query, self._points[entry.point_id]
                            )
                            queue.push(dist, int(entry.point_id))
                    else:
                        bound = self._box_lower_bound(query, entry.lo, entry.hi)
                        queue.push(bound, entry.child)
            else:
                yield item, key

    def knn_distances(
        self, query_points, k: int, exclude_indices=None, prune_caps=None
    ) -> np.ndarray:
        """Batched k-th NN distances via a pruned block traversal.

        Internal nodes evaluate the MBR lower bounds of *all* their
        entries for the whole active query block with one ``clip`` +
        metric kernel (:func:`~repro.indexes.batch_tools.box_lower_bounds`);
        each subtree is then visited in ascending mean bound with only the
        rows its bound still beats — the per-row radii come from the
        shared :class:`~repro.indexes.batch_tools.KSmallestKeeper` pool
        and shrink as leaves are consumed.  Removed points (lazy removal)
        are skipped at the leaves.
        """
        k = check_k(k)
        queries = as_query_rows(query_points, dim=self.dim, dtype=self._points.dtype)
        m = queries.shape[0]
        exclude = check_exclude_indices(exclude_indices, m)
        keeper = KSmallestKeeper(
            m, k, dtype=self._points.dtype, caps=prune_caps
        )
        if m and self.size:
            rows = np.arange(m, dtype=np.intp)
            self._batch_visit(self._root, rows, queries, exclude, keeper)
        return keeper.result()

    def _batch_visit(
        self,
        node: _RNode,
        rows: np.ndarray,
        queries: np.ndarray,
        exclude: np.ndarray,
        keeper: KSmallestKeeper,
    ) -> None:
        if node.is_leaf:
            ids = np.asarray(
                [
                    entry.point_id
                    for entry in node.entries
                    if self._active[entry.point_id]
                ],
                dtype=np.intp,
            )
            if ids.shape[0]:
                cand = self.metric.pairwise(queries[rows], self._points[ids])
                mask_excluded(cand, ids, exclude[rows])
                keeper.update(rows, cand)
            return
        if not node.entries:
            return
        los = np.stack([entry.lo for entry in node.entries])
        his = np.stack([entry.hi for entry in node.entries])
        bounds = box_lower_bounds(self.metric, queries[rows], los, his)
        for col in np.argsort(bounds.mean(axis=0)):
            sub = rows[bounds[:, col] < keeper.kth[rows]]
            if sub.shape[0]:
                self._batch_visit(
                    node.entries[col].child, sub, queries, exclude, keeper
                )

    def range_count(self, query, radius: float) -> int:
        query = as_query_point(query, dim=self.dim)
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if entry.is_point:
                    if self._active[entry.point_id]:
                        if self.metric.distance(
                            query, self._points[entry.point_id]
                        ) <= radius:
                            count += 1
                elif self._box_lower_bound(query, entry.lo, entry.hi) <= radius:
                    stack.append(entry.child)
        return count

    def remove(self, index: int) -> None:
        # Lazy removal: MBRs stay valid (possibly loose) bounding volumes.
        self._deactivate(index)

    # ------------------------------------------------------------------
    # Introspection (used by the test suite and the RdNN-tree subclass)
    # ------------------------------------------------------------------
    @property
    def root(self) -> _RNode:
        return self._root

    def check_invariants(self) -> None:
        """Verify MBR containment and fan-out bounds; raises AssertionError."""
        reported: set[int] = set()
        stack: list[tuple[_RNode, Optional[_Entry]]] = [(self._root, None)]
        while stack:
            node, routing = stack.pop()
            assert len(node.entries) <= self.capacity, "node overflow"
            if node is not self._root:
                assert len(node.entries) >= 1, "empty non-root node"
            for entry in node.entries:
                if routing is not None:
                    assert (entry.lo >= routing.lo - 1e-12).all(), "MBR breach (lo)"
                    assert (entry.hi <= routing.hi + 1e-12).all(), "MBR breach (hi)"
                if entry.is_point:
                    assert node.is_leaf, "point entry in internal node"
                    reported.add(entry.point_id)
                else:
                    assert not node.is_leaf, "child entry in leaf node"
                    assert entry.child.parent is node, "broken parent link"
                    stack.append((entry.child, entry))
        assert reported == set(range(self._points.shape[0])), (
            "leaf entries do not cover all points"
        )
