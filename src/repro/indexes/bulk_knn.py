"""Bulk k-nearest-neighbor computation over a whole dataset.

The precomputation-heavy RkNN baselines (RdNN-Tree, MRkNNCoP) and the exact
ground truth all need the kNN distance of *every* point of ``S`` computed
over ``S \\ {x}`` (the library-wide self-exclusive convention; DESIGN.md).
This module performs that O(n^2) computation with chunked, vectorized
distance kernels so the quadratic cost — the very cost the paper's RDT
avoids — is at least paid at numpy speed rather than interpreter speed.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, get_metric
from repro.utils.validation import as_dataset, check_k

__all__ = ["bulk_knn_distances", "bulk_knn"]


def _chunk_rows(n: int, chunk_size: int):
    for start in range(0, n, chunk_size):
        yield start, min(n, start + chunk_size)


def bulk_knn(
    data,
    k: int,
    metric: str | Metric | None = None,
    chunk_size: int = 1024,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(ids, dists)``, each of shape ``(n, k)``.

    Row ``i`` holds the ids / distances of the ``k`` nearest neighbors of
    point ``i`` among the *other* points, in ascending distance order with
    ties broken by ascending id.
    """
    points = as_dataset(data)
    n = points.shape[0]
    k = check_k(k, n=n - 1, name="k")
    metric = get_metric(metric)
    all_ids = np.empty((n, k), dtype=np.intp)
    all_dists = np.empty((n, k), dtype=np.float64)
    for start, stop in _chunk_rows(n, chunk_size):
        block = metric.pairwise(points[start:stop], points)
        rows = np.arange(stop - start)
        # Exclude each point from its own neighborhood.
        block[rows, np.arange(start, stop)] = np.inf
        if k < n - 1:
            part = np.argpartition(block, k - 1, axis=1)[:, :k]
        else:
            part = np.argsort(block, axis=1)[:, :k]
        part_d = np.take_along_axis(block, part, axis=1)
        # Exact ordering of the k-prefix, ties by id.
        order = np.lexsort((part, part_d), axis=1)
        all_ids[start:stop] = np.take_along_axis(part, order, axis=1)
        all_dists[start:stop] = np.take_along_axis(part_d, order, axis=1)
    return all_ids, all_dists


def bulk_knn_distances(
    data,
    k: int,
    metric: str | Metric | None = None,
    chunk_size: int = 1024,
) -> np.ndarray:
    """Return the ``(n,)`` array of k-th NN distances (self excluded)."""
    points = as_dataset(data)
    n = points.shape[0]
    k = check_k(k, n=n - 1, name="k")
    metric = get_metric(metric)
    out = np.empty(n, dtype=np.float64)
    for start, stop in _chunk_rows(n, chunk_size):
        block = metric.pairwise(points[start:stop], points)
        rows = np.arange(stop - start)
        block[rows, np.arange(start, stop)] = np.inf
        if k < n - 1:
            kth = np.partition(block, k - 1, axis=1)[:, k - 1]
        else:
            kth = np.sort(block, axis=1)[:, k - 1]
        out[start:stop] = kth
    return out
