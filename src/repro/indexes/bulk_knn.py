"""Bulk k-nearest-neighbor computation over a whole dataset.

The precomputation-heavy RkNN baselines (RdNN-Tree, MRkNNCoP), the exact
ground truth, and the batched query engine's refinement phase all need kNN
distances of *many* query points at once, computed over ``S`` or
``S \\ {x}`` (the library-wide self-exclusive convention; DESIGN.md).  This
module performs those computations with chunked, vectorized distance
kernels so the quadratic cost — the very cost the paper's RDT avoids — is
at least paid at numpy speed rather than interpreter speed.

:func:`chunked_knn_distances` is the shared kernel: it serves as the
default implementation of the :meth:`repro.indexes.Index.knn_distances`
batch capability and as the engine of :func:`bulk_knn_distances`.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, get_metric
from repro.utils.validation import as_dataset, check_k

__all__ = ["bulk_knn_distances", "bulk_knn", "chunked_knn_distances"]

#: Peak doubles per pairwise block; every bulk entry point sizes its chunks
#: from this shared envelope via :func:`adaptive_chunk_size`.
BLOCK_BUDGET = 8 * 1024 * 1024


def adaptive_chunk_size(n: int) -> int:
    """Query rows per block so one pairwise block stays inside the budget."""
    return max(16, BLOCK_BUDGET // max(1, n))


def _metric_for(metric, points: np.ndarray) -> Metric:
    """Resolve a metric for a bulk entry point, following the data's dtype.

    A metric *instance* keeps its own dtype policy; a name (or ``None``)
    resolves to a metric matching ``points`` so float32 datasets are
    processed in float32 end to end.
    """
    if isinstance(metric, Metric):
        return metric
    dtype = points.dtype if points.dtype == np.float32 else None
    return get_metric(metric, dtype=dtype)


def _chunk_rows(n: int, chunk_size: int):
    for start in range(0, n, chunk_size):
        yield start, min(n, start + chunk_size)


def chunked_knn_distances(
    queries: np.ndarray,
    points: np.ndarray,
    k: int,
    metric: Metric,
    *,
    point_ids: np.ndarray | None = None,
    exclude_ids: np.ndarray | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """k-th NN distance of every query row against ``points``, chunked.

    Parameters
    ----------
    queries:
        ``(m, dim)`` query rows.
    points:
        ``(n, dim)`` candidate rows the neighbors are drawn from.
    k:
        Neighborhood size.  Rows with fewer than ``k`` eligible points get
        ``inf`` (the :meth:`Index.knn_distance` convention).
    metric:
        Resolved :class:`~repro.distances.Metric`; its ``pairwise`` kernel
        does all the distance work (and the distance-call accounting).
    point_ids:
        Optional ``(n,)`` ids labelling the columns; required when
        ``exclude_ids`` is given.
    exclude_ids:
        Optional ``(m,)`` per-row point id to exclude from that row's
        neighborhood (negative = exclude nothing).  This is the batched form
        of ``knn_distance(..., exclude_index=...)``.
    chunk_size:
        Query rows per pairwise block, bounding peak memory at
        ``chunk_size * n`` doubles.  ``None`` (default) adapts to ``n``
        via :func:`adaptive_chunk_size` so every backend stays inside the
        shared memory budget regardless of dataset size.
    """
    # The metric's dtype policy governs the block dtype; float32 queries
    # against a float32 metric never round-trip through float64.
    queries = np.asarray(queries, dtype=metric.dtype)
    m, n = queries.shape[0], points.shape[0]
    if chunk_size is None:
        chunk_size = adaptive_chunk_size(n)
    out = np.full(m, np.inf, dtype=metric.dtype)
    if n == 0 or m == 0:
        return out
    if exclude_ids is not None:
        if point_ids is None:
            raise ValueError("exclude_ids requires point_ids labelling the columns")
        exclude_ids = np.asarray(exclude_ids)
        if exclude_ids.shape != (m,):
            raise ValueError(
                f"exclude_ids must have one entry per query row, got shape "
                f"{exclude_ids.shape} for {m} rows"
            )
        # Column position of each row's excluded id (n = not present),
        # found by binary search over the sorted id labels.  Ids are never
        # reused, so after heavy insert/remove churn the id space is much
        # larger than ``n``; a dense id->column table would cost O(max_id)
        # memory per call, unbounded by the live set.
        point_ids = np.asarray(point_ids)
        if point_ids.shape[0] > 1 and np.any(np.diff(point_ids) < 0):
            order = np.argsort(point_ids, kind="stable")
            sorted_ids = point_ids[order]
        else:
            order = None
            sorted_ids = point_ids
        pos = np.searchsorted(sorted_ids, exclude_ids)
        pos_in_range = np.minimum(pos, n - 1)
        found = (
            (exclude_ids >= 0)
            & (pos < n)
            & (sorted_ids[pos_in_range] == exclude_ids)
        )
        cols = pos_in_range if order is None else order[pos_in_range]
        exclude_cols = np.where(found, cols, n)
    else:
        exclude_cols = None
    for start, stop in _chunk_rows(m, chunk_size):
        block = metric.pairwise(queries[start:stop], points)
        if exclude_cols is not None:
            rows = np.flatnonzero(exclude_cols[start:stop] < n)
            block[rows, exclude_cols[start:stop][rows]] = np.inf
        # Rows keep their inf fill when fewer than k finite entries exist.
        if k <= n:
            if k < n:
                kth = np.partition(block, k - 1, axis=1)[:, k - 1]
            else:
                kth = np.sort(block, axis=1)[:, k - 1]
            out[start:stop] = kth
    return out


def bulk_knn(
    data,
    k: int,
    metric: str | Metric | None = None,
    chunk_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(ids, dists)``, each of shape ``(n, k)``.

    Row ``i`` holds the ids / distances of the ``k`` nearest neighbors of
    point ``i`` among the *other* points, in ascending distance order with
    ties broken by ascending id.  ``chunk_size=None`` (default) adapts the
    block size to ``n`` via :func:`adaptive_chunk_size`, so the large-``n``
    precompute paths (RdNN-Tree, MRkNNCoP, exact ground truth) stay inside
    the shared :data:`BLOCK_BUDGET` memory envelope.
    """
    points = as_dataset(data)
    n = points.shape[0]
    k = check_k(k, n=n - 1, name="k")
    metric = _metric_for(metric, points)
    if chunk_size is None:
        chunk_size = adaptive_chunk_size(n)
    all_ids = np.empty((n, k), dtype=np.intp)
    all_dists = np.empty((n, k), dtype=metric.dtype)
    for start, stop in _chunk_rows(n, chunk_size):
        block = metric.pairwise(points[start:stop], points)
        rows = np.arange(stop - start)
        # Exclude each point from its own neighborhood.
        block[rows, np.arange(start, stop)] = np.inf
        if k < n - 1:
            part = np.argpartition(block, k - 1, axis=1)[:, :k]
        else:
            part = np.argsort(block, axis=1)[:, :k]
        part_d = np.take_along_axis(block, part, axis=1)
        # Exact ordering of the k-prefix, ties by id.
        order = np.lexsort((part, part_d), axis=1)
        all_ids[start:stop] = np.take_along_axis(part, order, axis=1)
        all_dists[start:stop] = np.take_along_axis(part_d, order, axis=1)
    return all_ids, all_dists


def bulk_knn_distances(
    data,
    k: int,
    metric: str | Metric | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Return the ``(n,)`` array of k-th NN distances (self excluded).

    ``chunk_size=None`` (default) adapts to ``n`` via
    :func:`adaptive_chunk_size` — the same memory-budget policy as every
    other bulk path.
    """
    points = as_dataset(data)
    n = points.shape[0]
    k = check_k(k, n=n - 1, name="k")
    metric = _metric_for(metric, points)
    ids = np.arange(n, dtype=np.intp)
    return chunked_knn_distances(
        points,
        points,
        k,
        metric,
        point_ids=ids,
        exclude_ids=ids,
        chunk_size=chunk_size,
    )
