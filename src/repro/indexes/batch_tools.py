"""Shared machinery for pruned batched kNN searches over tree indexes.

Every tree backend answers the batched :meth:`repro.indexes.Index.knn_distances`
capability with the same scheme: a depth-first block traversal that carries
the *active* query rows of the batch down the tree, evaluates each node's
lower bound for the whole block in one vectorized kernel, and deactivates
rows whose current k-th smallest distance already prunes the subtree.  The
per-row shrinking pruning radii live in one shared :class:`KSmallestKeeper`
pool; the backends differ only in how a node's lower bound is computed
(box clamp for KD/R*, triangle inequality for the metric trees).

Semantics match the chunked pairwise default (``DESIGN.md``): per-row
``exclude_indices`` with negative entries meaning "exclude nothing", and
``inf`` for rows with fewer than ``k`` eligible points — the keeper's
buffers start at ``inf``, so underfull rows report ``inf`` for free.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.distances import Metric

__all__ = [
    "KSmallestKeeper",
    "check_exclude_indices",
    "mask_excluded",
    "box_lower_bounds",
]


class KSmallestKeeper:
    """Running k-smallest distance pool for a block of ``m`` queries.

    Maintains, per query row, the ``k`` smallest candidate distances seen
    so far (unsorted) and the current k-th smallest in :attr:`kth` — the
    per-row pruning radius the tree traversals test their node bounds
    against.  Rows that have collected fewer than ``k`` finite candidates
    keep ``inf`` entries in their buffer, so their radius is ``inf`` and
    they are never pruned (matching the fewer-than-k convention).

    ``caps`` optionally seeds the pruning radii with externally known
    upper bounds on each row's true k-th NN distance (e.g. the RDT
    refinement's triangle bounds).  Caps only tighten *pruning*: a
    subtree skipped because its lower bound is at least ``cap >= kth``
    cannot contain any of the k nearest, so the final k-smallest pool is
    exactly the pool an uncapped search collects.  The exact answer is
    read through :meth:`result` (the pool maximum), never :attr:`kth`,
    which stays clamped to the caps for pruning.
    """

    def __init__(self, m: int, k: int, dtype=None, caps=None) -> None:
        self.k = int(k)
        dtype = np.dtype(np.float64 if dtype is None else dtype)
        self._best = np.full((m, self.k), np.inf, dtype=dtype)
        #: Current pruning radius per row: the running k-th smallest,
        #: clamped to the row's cap when caps were given.
        self.kth = np.full(m, np.inf, dtype=dtype)
        self._caps = None
        if caps is not None:
            self._caps = np.asarray(caps, dtype=dtype)
            if self._caps.shape != (m,):
                raise ValueError(
                    f"caps must have one entry per query row, got shape "
                    f"{self._caps.shape} for {m} rows"
                )
            np.minimum(self.kth, self._caps, out=self.kth)

    def update(self, rows: np.ndarray, cand: np.ndarray) -> None:
        """Merge candidate distances ``cand[(len(rows), c)]`` into the pool.

        ``cand`` may contain ``inf`` entries (masked exclusions or removed
        points); they never displace finite candidates.  The merge itself
        is the dispatched :func:`repro.kernels.keeper_update` kernel — one
        of the two profiled hot spots the compiled layer targets.
        """
        kernels.keeper_update(self._best, self.kth, rows, cand)
        if self._caps is not None:
            # The kernel rewrote kth[rows] as the pool maximum; re-clamp so
            # the pruning radius never exceeds the known upper bound.
            self.kth[rows] = np.minimum(self.kth[rows], self._caps[rows])

    def result(self) -> np.ndarray:
        """The exact k-th smallest distance per row (``inf`` when underfull).

        With caps in play :attr:`kth` is a pruning radius, not the answer;
        the answer is always the pool maximum.
        """
        if self._caps is None:
            return self.kth
        return self._best.max(axis=1)


def check_exclude_indices(exclude_indices, m: int) -> np.ndarray:
    """Validate per-row exclusions; ``None`` becomes all ``-1`` (no exclusion)."""
    if exclude_indices is None:
        return np.full(m, -1, dtype=np.intp)
    exclude = np.asarray(exclude_indices, dtype=np.intp)
    if exclude.shape != (m,):
        raise ValueError(
            f"exclude_indices must have one entry per query row, got "
            f"shape {exclude.shape} for {m} rows"
        )
    return exclude


def mask_excluded(
    cand: np.ndarray, ids: np.ndarray, exclude_rows: np.ndarray
) -> None:
    """Set each row's excluded candidate column to ``inf``, in place.

    ``cand`` is a ``(r, c)`` distance block whose columns are labelled by
    the point ids ``ids``; ``exclude_rows`` holds one excluded id per row
    (negative entries never match a point id, excluding nothing).
    """
    if exclude_rows.shape[0] and np.any(exclude_rows >= 0):
        cand[ids[None, :] == exclude_rows[:, None]] = np.inf


def box_lower_bounds(
    metric: Metric, queries: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Lower bounds from each query row to one or more axis-aligned boxes.

    The closest point of a box under any Minkowski metric is the
    coordinate-wise clamp of the query, so ``d(q, clip(q, lo, hi))`` is an
    exact lower bound for every point inside.  ``lo``/``hi`` may be a
    single box (``(dim,)`` → returns ``(r,)``) or a stack of ``E`` boxes
    (``(E, dim)`` → returns ``(r, E)``); either way the whole block is one
    :meth:`~repro.distances.Metric.paired` kernel call.
    """
    if lo.ndim == 1:
        clipped = np.clip(queries, lo, hi)
        return metric.paired(queries, clipped)
    clipped = np.clip(queries[:, None, :], lo[None, :, :], hi[None, :, :])
    return metric.boxes_lower_bounds(queries, clipped)
