"""Sequential-scan index.

The "straightforward sequential database scan" back-end of the paper's
Section 7.1: every query computes the distances from the query point to the
whole data set with one vectorized kernel, then serves neighbors from the
sorted order.  For high-dimensional data (the paper's MNIST and Imagenet
runs) this brute-force scan beats tree traversals, which is exactly the
regime in which the paper falls back to it.

Ties are broken by ascending point id so that repeated scans yield a
deterministic order.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.indexes.base import Index
from repro.indexes.bulk_knn import chunked_knn_distances
from repro.utils.validation import as_query_point, as_query_rows, check_k

__all__ = ["LinearScanIndex"]


class LinearScanIndex(Index):
    """Brute-force scan satisfying the incremental-NN protocol."""

    name = "linear-scan"
    supports_insert = True
    supports_remove = True

    def _distances(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (active ids, distances from query to each active point)."""
        ids = np.flatnonzero(self._active)
        dists = self.metric.to_point(self._points[ids], query)
        return ids, dists

    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        ids, dists = self._distances(query)
        order = np.lexsort((ids, dists))
        for pos in order:
            yield int(ids[pos]), float(dists[pos])

    def knn(
        self, query, k: int, exclude_index: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        k = check_k(k)
        query = as_query_point(query, dim=self.dim)
        ids, dists = self._distances(query)
        if exclude_index is not None:
            keep = ids != exclude_index
            ids, dists = ids[keep], dists[keep]
        if k >= ids.shape[0]:
            order = np.lexsort((ids, dists))
        else:
            # Partial selection first, then an exact sort of the small prefix.
            part = np.argpartition(dists, k - 1)[:k]
            order = part[np.lexsort((ids[part], dists[part]))]
        order = order[:k]
        return ids[order], dists[order]

    def knn_distances(
        self, query_points, k: int, exclude_indices=None, prune_caps=None
    ) -> np.ndarray:
        """Batched k-th NN distances, tuned for the sequential scan.

        In the common no-removals case the chunked pairwise kernel runs
        directly over the stored point matrix, skipping the per-call
        active-row gather (an ``n x dim`` copy) the generic default pays.
        """
        k = check_k(k)
        query_points = as_query_rows(
            query_points, dim=self.dim, dtype=self._points.dtype
        )
        if self._active.all():
            points = self._points
            ids = np.arange(self._points.shape[0], dtype=np.intp)
        else:
            ids = np.flatnonzero(self._active)
            points = self._points[ids]
        return chunked_knn_distances(
            query_points,
            points,
            k,
            self.metric,
            point_ids=ids,
            exclude_ids=exclude_indices,
        )

    def range_search(self, query, radius: float) -> tuple[np.ndarray, np.ndarray]:
        query = as_query_point(query, dim=self.dim)
        ids, dists = self._distances(query)
        keep = dists <= radius
        ids, dists = ids[keep], dists[keep]
        order = np.lexsort((ids, dists))
        return ids[order], dists[order]

    def range_count(self, query, radius: float) -> int:
        query = as_query_point(query, dim=self.dim)
        _, dists = self._distances(query)
        return int(np.count_nonzero(dists <= radius))

    def insert(self, point) -> int:
        return self._append_point(point)

    def remove(self, index: int) -> None:
        self._deactivate(index)
