"""Shared machinery for vectorized tree construction.

The static space-partitioning builds (KD, VP, ball) all recurse the same
way: a single permutation array of point ids is partitioned *in place*, and
each node is described by a ``(start, end)`` range of that array instead of
its own freshly-copied Python id list.  The only per-node allocations left
are the gathers the node's geometry genuinely needs (bounding boxes,
centroids, distance columns) and the leaf id lists the dynamic operations
consume.

``partition_median`` replaces ``np.median`` in the splitting rules.  It is
bit-identical to ``np.median`` (middle element for odd counts, the exact
midpoint ``(a + b) / 2`` of the two middle elements for even counts) but
runs a single ``np.partition`` selection instead of a full sort-based
median, and makes the determinism contract explicit: a bulk rebuild of the
same ids always reproduces the same split values, hence the same tree.
"""

from __future__ import annotations

import numpy as np

__all__ = ["partition_median", "apply_partition", "subtree_point_ids"]


def partition_median(values: np.ndarray) -> float:
    """The median of a 1-D array via selection, bit-identical to ``np.median``."""
    n = values.shape[0]
    mid = n // 2
    if n % 2:
        return float(np.partition(values, mid)[mid])
    part = np.partition(values, [mid - 1, mid])
    return float((part[mid - 1] + part[mid]) / 2.0)


def apply_partition(view: np.ndarray, mask: np.ndarray) -> int:
    """Stably reorder ``view`` in place so ``mask`` rows precede the rest.

    ``view`` is a slice of the build permutation; both sides keep their
    relative order (matching the ``ids[mask]`` / ``ids[~mask]`` recursion
    the copying builds used, so tree structures are unchanged).  Returns
    the number of ``mask`` rows — the split position.
    """
    left = view[mask]
    right = view[~mask]
    split = left.shape[0]
    view[:split] = left
    view[split:] = right
    return split


def subtree_point_ids(node) -> np.ndarray:
    """All point ids stored in the leaves under a binary-split node.

    Works on any node shape exposing ``is_leaf`` / ``left`` / ``right`` /
    ``point_ids`` (the KD and ball trees); the invariant checkers use it
    to compare a node's cached geometry against its actual subtree.
    """
    ids: list[int] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            ids.extend(current.point_ids)
        else:
            stack.append(current.left)
            stack.append(current.right)
    return np.asarray(ids, dtype=np.intp)
