"""Cover tree with dynamic insert/remove and incremental NN search.

The paper (Section 7.1) uses the cover tree of Beygelzimer, Kakade and
Langford as the incremental-kNN back-end for all low/medium-dimensional
datasets.  This module implements the *simplified* cover tree of Izbicki and
Shelton (ICML 2015), which maintains only the covering invariant:

    every child ``c`` of a node ``p`` satisfies ``d(p, c) <= covdist(p)``,
    where ``covdist(p) = 2 ** p.level`` and ``c.level = p.level - 1``.

Each node additionally caches ``maxdist`` — an upper bound on the distance
from the node's point to any point in its subtree — which yields the
best-first search bound

    d(q, y) >= d(q, node.point) - node.maxdist        for y in subtree(node).

The incremental search is a single priority queue mixing exact point
distances and subtree lower bounds; points are emitted when they reach the
queue front, guaranteeing nondecreasing order (the contract required by
RDT's filter phase).

Removal detaches the node and re-inserts the points of its orphaned
subtree — the standard approach for cover trees, adequate because RDT's
dynamic scenarios (Section 1: warehouses, streams) remove points far less
often than they query.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.indexes.batch_tools import (
    KSmallestKeeper,
    check_exclude_indices,
    mask_excluded,
)
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.validation import as_query_point, as_query_rows, check_k

__all__ = ["CoverTreeIndex"]


class _Node:
    __slots__ = ("point_id", "level", "children", "maxdist", "parent")

    def __init__(self, point_id: int, level: int, parent: Optional["_Node"] = None):
        self.point_id = point_id
        self.level = level
        self.children: list[_Node] = []
        self.maxdist = 0.0
        self.parent = parent

    def covdist(self) -> float:
        return 2.0**self.level


class CoverTreeIndex(Index):
    """Simplified cover tree (Izbicki & Shelton 2015) over an arbitrary metric."""

    name = "cover-tree"
    supports_insert = True
    supports_remove = True
    #: Inserts rewire nodes in place and removals eagerly detach a
    #: subtree and re-insert its orphans — snapshot views share that
    #: structure, so concurrent structural mutation can corrupt their
    #: reads.  The Service layer drains readers before mutating.
    snapshot_stable = False

    def __init__(self, data, metric=None, batch_build: bool = True) -> None:
        super().__init__(data, metric)
        self._root: Optional[_Node] = None
        self._nodes: dict[int, _Node] = {}
        self._batch_sizes: Optional[dict[int, int]] = None
        n = self._points.shape[0]
        if batch_build and n > 1:
            self._batch_build(np.arange(n, dtype=np.intp))
        else:
            for point_id in range(n):
                self._insert_id(point_id)

    def _repr_knobs(self) -> str:
        return f"root_level={self._root.level if self._root is not None else None}"

    # ------------------------------------------------------------------
    # Batch construction (divide and conquer)
    # ------------------------------------------------------------------
    def _batch_build(self, ids: np.ndarray) -> None:
        """Build the whole tree at once instead of n point-at-a-time descents.

        Each node carves its block of subtree points into children with one
        ``to_point`` kernel per child: the first unassigned point becomes a
        child at ``level - 1`` and absorbs every remaining point within its
        cover ball ``2 ** (level - 1)`` — those points can recursively live
        under it, while the leftovers stay direct-child candidates of the
        node (they are within ``covdist(node)`` by construction).  The
        node's ``maxdist`` is the exact max of its block's distances, known
        before the block is partitioned, so no bottom-up pass is needed.
        Blocks at distance zero (exact duplicates) are chained one node per
        level without any kernel calls — the same chain shape the
        incremental path produces, minus its quadratic descent cost.
        """
        root_id = int(ids[0])
        rest = ids[1:]
        d_rest = self.metric.to_point(self._points[rest], self._points[root_id])
        d_max = float(d_rest.max()) if rest.shape[0] else 0.0
        level = max(0, int(math.ceil(math.log2(d_max)))) if d_max > 0.0 else 0
        root = _Node(root_id, level=level)
        self._root = root
        self._nodes[root_id] = root
        stack: list[tuple[_Node, np.ndarray, np.ndarray]] = [(root, rest, d_rest)]
        while stack:
            node, block, dists = stack.pop()
            if block.shape[0] == 0:
                continue
            node.maxdist = float(dists.max())
            remaining, d_remaining = block, dists
            while remaining.shape[0]:
                if float(d_remaining.max()) == 0.0:
                    # Every remaining point duplicates the node's point:
                    # chain them, one single-child node per level.
                    chain = node
                    for dup in remaining:
                        child = _Node(int(dup), level=chain.level - 1, parent=chain)
                        chain.children.append(child)
                        self._nodes[int(dup)] = child
                        chain = child
                    break
                child_id = int(remaining[0])
                child = _Node(child_id, level=node.level - 1, parent=node)
                node.children.append(child)
                self._nodes[child_id] = child
                rest_block = remaining[1:]
                if rest_block.shape[0] == 0:
                    break
                d_child = self.metric.to_point(
                    self._points[rest_block], self._points[child_id]
                )
                absorbed = d_child <= child.covdist()
                stack.append((child, rest_block[absorbed], d_child[absorbed]))
                remaining = rest_block[~absorbed]
                d_remaining = d_remaining[1:][~absorbed]
        self._batch_sizes = None

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------
    def _dist_ids(self, a: int, b: int) -> float:
        return self.metric.distance(self._points[a], self._points[b])

    def _insert_id(self, point_id: int) -> None:
        if self._root is None:
            self._root = _Node(point_id, level=0)
            self._nodes[point_id] = self._root
            return
        root = self._root
        d_root = self._dist_ids(root.point_id, point_id)
        if d_root > root.covdist():
            # Raise the root level until its cover ball reaches the new point.
            # Growing covdist keeps all existing covering invariants valid.
            if d_root > 0.0:
                root.level = max(root.level, int(math.ceil(math.log2(d_root))))
        self._insert_under(root, point_id, d_root)

    def _insert_under(self, node: _Node, point_id: int, d_node: float) -> None:
        """Insert below ``node``; ``d_node`` is d(node.point, new point)."""
        while True:
            node.maxdist = max(node.maxdist, d_node)
            best_child: Optional[_Node] = None
            best_dist = math.inf
            for child in node.children:
                d_child = self._dist_ids(child.point_id, point_id)
                if d_child <= child.covdist() and d_child < best_dist:
                    best_child = child
                    best_dist = d_child
            if best_child is None:
                new_node = _Node(point_id, level=node.level - 1, parent=node)
                node.children.append(new_node)
                self._nodes[point_id] = new_node
                return
            node, d_node = best_child, best_dist

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        if self._root is None:
            return
        queue = MinPriorityQueue()
        d_root = self.metric.distance(query, self._points[self._root.point_id])
        queue.push(d_root, ("point", self._root.point_id))
        if self._root.children:
            queue.push(max(0.0, d_root - self._root.maxdist), ("node", self._root))
        while queue:
            key, (kind, payload) = queue.pop()
            if kind == "point":
                yield payload, key
                continue
            # Expand a subtree: push each child's own point and child subtree.
            for child in payload.children:
                d_child = self.metric.distance(query, self._points[child.point_id])
                queue.push(d_child, ("point", child.point_id))
                if child.children:
                    queue.push(max(0.0, d_child - child.maxdist), ("node", child))

    def knn_distances(
        self, query_points, k: int, exclude_indices=None, prune_caps=None
    ) -> np.ndarray:
        """Batched k-th NN distances via a pruned block traversal.

        Each visited node evaluates the whole active block against all of
        its children's points with one pairwise kernel — those distances
        both feed the shared
        :class:`~repro.indexes.batch_tools.KSmallestKeeper` pool (every
        cover-tree node *is* a data point) and, lowered by each child's
        ``maxdist``, bound its subtree.  Query rows whose running k-th
        smallest distance already prunes a subtree are deactivated before
        descending; children are visited in ascending mean distance so
        radii shrink before the far subtrees are attempted.  Because each
        node holds exactly one point, a node-by-node descent would pay
        interpreter overhead per *point*; subtrees that shrink below
        ``_FLAT_SUBTREE`` descendants are therefore evaluated as one
        pairwise block instead (their entry bound has already been
        checked, so this only trades pruning granularity for kernel
        width).  Removal is eager in this tree, so every node in it is an
        active point.
        """
        k = check_k(k)
        queries = as_query_rows(query_points, dim=self.dim, dtype=self._points.dtype)
        m = queries.shape[0]
        exclude = check_exclude_indices(exclude_indices, m)
        keeper = KSmallestKeeper(
            m, k, dtype=self._points.dtype, caps=prune_caps
        )
        if m and self._root is not None:
            if self._batch_sizes is None:
                # Cached until the next insert/remove: rebuilding this
                # O(n) table per call would tax every single-query
                # refinement with an interpreted full-tree walk.
                self._batch_sizes = {}
                self._subtree_sizes(self._root, self._batch_sizes)
            sizes = self._batch_sizes
            rows = np.arange(m, dtype=np.intp)
            d_root = self.metric.to_point(queries, self._points[self._root.point_id])
            cand = d_root[:, None].copy()
            mask_excluded(
                cand, np.asarray([self._root.point_id], dtype=np.intp), exclude
            )
            keeper.update(rows, cand)
            self._batch_visit(
                self._root, rows, d_root, queries, exclude, keeper, sizes
            )
        return keeper.result()

    #: Subtrees with at most this many descendants are evaluated as one
    #: pairwise block instead of being descended node by node.
    _FLAT_SUBTREE = 192

    def _subtree_sizes(self, root: _Node, sizes: dict[int, int]) -> None:
        """Post-order subtree point counts, keyed by ``id(node)``."""
        stack: list[tuple[_Node, bool]] = [(root, False)]
        while stack:
            node, ready = stack.pop()
            if ready:
                sizes[id(node)] = 1 + sum(
                    sizes[id(child)] for child in node.children
                )
            else:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))

    def _batch_visit(
        self,
        node: _Node,
        rows: np.ndarray,
        d_node: np.ndarray,
        queries: np.ndarray,
        exclude: np.ndarray,
        keeper: KSmallestKeeper,
        sizes: dict[int, int],
    ) -> None:
        if not node.children:
            return
        alive = (d_node - node.maxdist) < keeper.kth[rows]
        rows = rows[alive]
        if rows.shape[0] == 0:
            return
        if sizes[id(node)] - 1 <= self._FLAT_SUBTREE:
            collected: list[int] = []
            self._collect_subtree(node, collected)
            ids = np.asarray(collected[1:], dtype=np.intp)  # node itself is done
            cand = self.metric.pairwise(queries[rows], self._points[ids])
            mask_excluded(cand, ids, exclude[rows])
            keeper.update(rows, cand)
            return
        child_ids = np.asarray([c.point_id for c in node.children], dtype=np.intp)
        dists = self.metric.pairwise(queries[rows], self._points[child_ids])
        cand = dists.copy()
        mask_excluded(cand, child_ids, exclude[rows])
        keeper.update(rows, cand)
        for col in np.argsort(dists.mean(axis=0)):
            child = node.children[col]
            if child.children:
                self._batch_visit(
                    child, rows, dists[:, col], queries, exclude, keeper, sizes
                )

    def range_count(self, query, radius: float) -> int:
        """Count points within ``radius`` using the maxdist pruning bound."""
        query = as_query_point(query, dim=self.dim)
        if self._root is None:
            return 0
        count = 0
        d_root = self.metric.distance(query, self._points[self._root.point_id])
        stack = [(self._root, d_root)]
        while stack:
            node, d_node = stack.pop()
            if d_node <= radius:
                count += 1
            if d_node - node.maxdist > radius:
                continue
            for child in node.children:
                d_child = self.metric.distance(query, self._points[child.point_id])
                stack.append((child, d_child))
        return count

    # ------------------------------------------------------------------
    # Dynamic operations
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        point_id = self._append_point(point)
        self._insert_id(point_id)
        self._batch_sizes = None  # structure changed; see knn_distances
        return point_id

    def remove(self, index: int) -> None:
        self._batch_sizes = None  # structure changed; see knn_distances
        self._deactivate(index)
        node = self._nodes.pop(index)
        orphans: list[int] = []
        self._collect_subtree(node, orphans)
        orphans.remove(index)
        if node.parent is None:
            self._root = None
        else:
            node.parent.children.remove(node)
        for orphan_id in orphans:
            del self._nodes[orphan_id]
        for orphan_id in orphans:
            self._insert_id(orphan_id)

    def _collect_subtree(self, node: _Node, out: list[int]) -> None:
        out.append(node.point_id)
        for child in node.children:
            self._collect_subtree(child, out)

    # ------------------------------------------------------------------
    # Introspection / invariant checking (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify covering and maxdist invariants; raises AssertionError."""
        if self._root is None:
            assert self.size == 0, "tree empty but active points remain"
            return
        seen: set[int] = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            assert node.point_id not in seen, "duplicate node for one point id"
            seen.add(node.point_id)
            for child in node.children:
                d = self._dist_ids(node.point_id, child.point_id)
                assert d <= node.covdist() + 1e-9, (
                    f"covering violated: d={d} > covdist={node.covdist()}"
                )
                # Root raising can leave older children at lower levels than
                # level-1; the search only relies on maxdist, so we check the
                # weaker (still sufficient) ordering invariant.
                assert child.level <= node.level - 1, "child level mismatch"
                stack.append(child)
            true_max = self._subtree_maxdist(node)
            assert node.maxdist >= true_max - 1e-9, (
                f"maxdist {node.maxdist} below true subtree radius {true_max}"
            )
        assert seen == set(int(i) for i in self.active_ids()), (
            "tree nodes do not match active point ids"
        )

    def _subtree_maxdist(self, node: _Node) -> float:
        ids: list[int] = []
        self._collect_subtree(node, ids)
        base = self._points[node.point_id]
        dists = self.metric.to_point(self._points[np.asarray(ids, dtype=np.intp)], base)
        return float(dists.max())
