"""Ball tree: centroid/radius space partitioning for moderate dimensions.

A classic alternative to the KD-tree whose regions are metric balls rather
than axis-aligned boxes, which makes it exact under any metric without the
clamp trick.  Nodes store a centroid and the radius covering their subtree;
construction splits each node's points between the two mutually farthest
seed points (the "bouncing ball" heuristic).  The incremental search is the
usual best-first queue over the bound

    d(q, y) >= max(0, d(q, centroid) - radius)      for y under a node.

Included as a further demonstration that RDT composes with any
incremental-NN back-end; the ablation benchmarks compare it against the
cover tree and the sequential scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.indexes.batch_tools import (
    KSmallestKeeper,
    check_exclude_indices,
    mask_excluded,
)
from repro.indexes.build_tools import apply_partition, subtree_point_ids
from repro.indexes.soa import FlatBallLayout, ball_flat_descent, flatten_ball
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.validation import (
    as_query_point,
    as_query_rows,
    check_k,
    check_positive_int,
)

__all__ = ["BallTreeIndex"]


@dataclass
class _Node:
    centroid: np.ndarray
    radius: float
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    point_ids: Optional[list[int]] = None  # leaves only

    @property
    def is_leaf(self) -> bool:
        return self.point_ids is not None


class BallTreeIndex(Index):
    """Static ball tree with incremental NN search (any metric)."""

    name = "ball-tree"
    supports_remove = True  # lazy removal

    #: Use the structure-of-arrays iterative descent for batched
    #: ``knn_distances`` (the recursive object-tree walk remains available
    #: for comparison benchmarks and as the semantics of record).
    use_flat_descent = True

    def __init__(self, data, metric=None, leaf_size: int = 16) -> None:
        super().__init__(data, metric)
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        self._root = self._build(np.arange(self._points.shape[0], dtype=np.intp))
        #: Lazily built flat node layout (repro.indexes.soa).  The ball
        #: tree is structurally static (removal is lazy), so the layout
        #: never goes stale once built; snapshots share it zero-copy.
        self._layout: FlatBallLayout | None = None

    def _repr_knobs(self) -> str:
        return f"leaf_size={self.leaf_size}"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: np.ndarray) -> _Node:
        """Build a subtree over ``ids`` by index-array partitioning.

        One permutation array is partitioned in place; nodes are ranges of
        it, so the only per-node allocations are the centroid/seed
        distance columns (one gather each) and the leaf id lists.  Seeds,
        masks, and id orderings match the historical copying build, so
        tree structures are unchanged.
        """
        perm = np.array(ids, dtype=np.intp)
        return self._build_range(perm, 0, perm.shape[0])

    def _build_range(self, perm: np.ndarray, start: int, end: int) -> _Node:
        view = perm[start:end]
        pts = self._points[view]
        centroid = pts.mean(axis=0)
        from_centroid = self.metric.to_point(pts, centroid)
        node = _Node(centroid=centroid, radius=float(from_centroid.max()))
        if end - start <= self.leaf_size:
            node.point_ids = view.tolist()
            return node
        # Bouncing-ball seeds: a point far from the centroid, then the
        # point farthest from it.
        seed_a = int(np.argmax(from_centroid))
        from_a = self.metric.to_point(pts, pts[seed_a])
        seed_b = int(np.argmax(from_a))
        from_b = self.metric.to_point(pts, pts[seed_b])
        left_mask = from_a <= from_b
        if left_mask.all() or not left_mask.any():
            # Duplicate-heavy region: no separating pair exists.
            node.point_ids = view.tolist()
            return node
        n_left = apply_partition(view, left_mask)
        node.left = self._build_range(perm, start, start + n_left)
        node.right = self._build_range(perm, start + n_left, end)
        return node

    def check_invariants(self) -> None:
        """Verify ball coverage and id-coverage invariants."""
        seen: list[int] = []
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                seen.extend(node.point_ids)
                ids = np.asarray(node.point_ids, dtype=np.intp)
            else:
                stack.append(node.left)
                stack.append(node.right)
                ids = subtree_point_ids(node)
            if ids.shape[0]:
                dists = self.metric.to_point(self._points[ids], node.centroid)
                assert float(dists.max()) <= node.radius + 1e-9, (
                    "ball radius does not cover subtree points"
                )
        assert sorted(seen) == list(range(self._points.shape[0])), (
            "leaves do not store every id exactly once"
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        queue = MinPriorityQueue()
        queue.push(0.0, self._root)
        while queue:
            key, item = queue.pop()
            if isinstance(item, _Node):
                if item.is_leaf:
                    ids = self._live_list(item.point_ids)
                    if ids:
                        dists = self.metric.to_point(
                            self._points[np.asarray(ids, dtype=np.intp)], query
                        )
                        for point_id, dist in zip(ids, dists):
                            queue.push(float(dist), int(point_id))
                else:
                    for child in (item.left, item.right):
                        d_centroid = self.metric.distance(query, child.centroid)
                        queue.push(max(0.0, d_centroid - child.radius), child)
            else:
                yield item, key

    def knn_distances(
        self, query_points, k: int, exclude_indices=None, prune_caps=None
    ) -> np.ndarray:
        """Batched k-th NN distances via a pruned block traversal.

        The batch walks the tree together: each node computes the active
        block's distances to both children's centroids with one kernel,
        lowers them by the covering radii into subtree bounds, and
        deactivates query rows whose running k-th smallest distance
        (shared :class:`~repro.indexes.batch_tools.KSmallestKeeper` pool)
        already prunes the subtree.  The child preferred by the majority
        of rows is descended first so radii shrink before the far side is
        attempted — the tree's pruning survives batching while all
        distance work stays in vectorized per-node blocks.
        """
        k = check_k(k)
        queries = as_query_rows(query_points, dim=self.dim, dtype=self._points.dtype)
        m = queries.shape[0]
        exclude = check_exclude_indices(exclude_indices, m)
        keeper = KSmallestKeeper(
            m, k, dtype=self._points.dtype, caps=prune_caps
        )
        if m and self.size:
            if self.use_flat_descent:
                # Leaf lists can only be trusted when every stored id is
                # live; a frozen snapshot's mask may postdate removals.
                all_active = bool(self._active.all()) and not self._frozen
                ball_flat_descent(
                    self._flat_layout(),
                    self.metric,
                    self._points,
                    None if all_active else self._active,
                    queries,
                    exclude,
                    keeper,
                )
            else:
                rows = np.arange(m, dtype=np.intp)
                self._batch_visit(
                    self._root, rows, np.zeros(m), queries, exclude, keeper
                )
        return keeper.result()

    def _flat_layout(self) -> FlatBallLayout:
        """The flat node arrays, built lazily (the tree is static)."""
        if self._layout is None:
            self._layout = flatten_ball(
                self._root,
                self.dim,
                self._points.dtype,
                points=self._points,
                metric=self.metric,
            )
        return self._layout

    def adopt_flat_layout(self, layout: FlatBallLayout) -> None:
        """Adopt a prebuilt flat layout (see ``KDTreeIndex.adopt_flat_layout``)."""
        if self.version != 0:
            raise ValueError(
                "can only adopt a layout into a pristine (version-0) tree; "
                "this one has been mutated"
            )
        if layout.leaf_ids.shape[0] != self._points.shape[0]:
            raise ValueError(
                f"layout indexes {layout.leaf_ids.shape[0]} points but this "
                f"tree stores {self._points.shape[0]}"
            )
        self._layout = layout

    def snapshot(self) -> "BallTreeIndex":
        # Materialize before freezing so every snapshot shares the arrays.
        self._flat_layout()
        return super().snapshot()

    def _batch_visit(
        self,
        node: _Node,
        rows: np.ndarray,
        bounds: np.ndarray,
        queries: np.ndarray,
        exclude: np.ndarray,
        keeper: KSmallestKeeper,
    ) -> None:
        alive = bounds < keeper.kth[rows]
        rows = rows[alive]
        if rows.shape[0] == 0:
            return
        if node.is_leaf:
            ids = np.asarray(self._live_list(node.point_ids), dtype=np.intp)
            if ids.shape[0]:
                cand = self.metric.pairwise(queries[rows], self._points[ids])
                mask_excluded(cand, ids, exclude[rows])
                keeper.update(rows, cand)
            return
        centroids = np.stack([node.left.centroid, node.right.centroid])
        to_centroid = self.metric.pairwise(queries[rows], centroids)
        left_bounds = np.maximum(0.0, to_centroid[:, 0] - node.left.radius)
        right_bounds = np.maximum(0.0, to_centroid[:, 1] - node.right.radius)
        left_votes = np.count_nonzero(to_centroid[:, 0] <= to_centroid[:, 1])
        if 2 * left_votes >= rows.shape[0]:
            order = ((node.left, left_bounds), (node.right, right_bounds))
        else:
            order = ((node.right, right_bounds), (node.left, left_bounds))
        for child, child_bounds in order:
            self._batch_visit(child, rows, child_bounds, queries, exclude, keeper)

    def range_count(self, query, radius: float) -> int:
        query = as_query_point(query, dim=self.dim)
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            d_centroid = self.metric.distance(query, node.centroid)
            if d_centroid - node.radius > radius:
                continue
            if node.is_leaf:
                ids = self._live_list(node.point_ids)
                if ids:
                    dists = self.metric.to_point(
                        self._points[np.asarray(ids, dtype=np.intp)], query
                    )
                    count += int(np.count_nonzero(dists <= radius))
            else:
                stack.append(node.left)
                stack.append(node.right)
        return count

    def remove(self, index: int) -> None:
        # Lazy removal: ball radii remain valid (possibly loose) bounds.
        self._deactivate(index)
