"""Ball tree: centroid/radius space partitioning for moderate dimensions.

A classic alternative to the KD-tree whose regions are metric balls rather
than axis-aligned boxes, which makes it exact under any metric without the
clamp trick.  Nodes store a centroid and the radius covering their subtree;
construction splits each node's points between the two mutually farthest
seed points (the "bouncing ball" heuristic).  The incremental search is the
usual best-first queue over the bound

    d(q, y) >= max(0, d(q, centroid) - radius)      for y under a node.

Included as a further demonstration that RDT composes with any
incremental-NN back-end; the ablation benchmarks compare it against the
cover tree and the sequential scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.validation import (
    as_query_point,
    as_query_rows,
    check_k,
    check_positive_int,
)

__all__ = ["BallTreeIndex"]


@dataclass
class _Node:
    centroid: np.ndarray
    radius: float
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    point_ids: Optional[list[int]] = None  # leaves only

    @property
    def is_leaf(self) -> bool:
        return self.point_ids is not None


class BallTreeIndex(Index):
    """Static ball tree with incremental NN search (any metric)."""

    name = "ball-tree"
    supports_remove = True  # lazy removal

    def __init__(self, data, metric=None, leaf_size: int = 16) -> None:
        super().__init__(data, metric)
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        self._root = self._build(np.arange(self._points.shape[0], dtype=np.intp))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _make_node(self, ids: np.ndarray) -> _Node:
        pts = self._points[ids]
        centroid = pts.mean(axis=0)
        radius = float(self.metric.to_point(pts, centroid).max())
        return _Node(centroid=centroid, radius=radius)

    def _build(self, ids: np.ndarray) -> _Node:
        node = self._make_node(ids)
        if ids.shape[0] <= self.leaf_size:
            node.point_ids = [int(i) for i in ids]
            return node
        pts = self._points[ids]
        # Bouncing-ball seeds: a point far from the centroid, then the
        # point farthest from it.
        from_centroid = self.metric.to_point(pts, node.centroid)
        seed_a = int(np.argmax(from_centroid))
        from_a = self.metric.to_point(pts, pts[seed_a])
        seed_b = int(np.argmax(from_a))
        from_b = self.metric.to_point(pts, pts[seed_b])
        left_mask = from_a <= from_b
        if left_mask.all() or not left_mask.any():
            # Duplicate-heavy region: no separating pair exists.
            node.point_ids = [int(i) for i in ids]
            return node
        node.left = self._build(ids[left_mask])
        node.right = self._build(ids[~left_mask])
        return node

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        queue = MinPriorityQueue()
        queue.push(0.0, self._root)
        while queue:
            key, item = queue.pop()
            if isinstance(item, _Node):
                if item.is_leaf:
                    ids = [i for i in item.point_ids if self._active[i]]
                    if ids:
                        dists = self.metric.to_point(
                            self._points[np.asarray(ids, dtype=np.intp)], query
                        )
                        for point_id, dist in zip(ids, dists):
                            queue.push(float(dist), int(point_id))
                else:
                    for child in (item.left, item.right):
                        d_centroid = self.metric.distance(query, child.centroid)
                        queue.push(max(0.0, d_centroid - child.radius), child)
            else:
                yield item, key

    def knn_distances(
        self, query_points, k: int, exclude_indices=None
    ) -> np.ndarray:
        """Batched k-th NN distances using leaf-level ball pruning.

        Query-to-leaf-centroid distances for the whole batch are computed
        with one pairwise kernel; each row then visits its leaves in
        ascending lower-bound order and stops as soon as the running k-th
        best distance rules out every remaining leaf.  This keeps the
        tree's pruning (unlike the chunked full scan of the base class)
        while replacing the per-point best-first heap with vectorized
        per-leaf work.
        """
        k = check_k(k)
        query_points = as_query_rows(query_points, dim=self.dim)
        if exclude_indices is None:
            exclude = np.full(query_points.shape[0], -1, dtype=np.intp)
        else:
            exclude = np.asarray(exclude_indices, dtype=np.intp)
            if exclude.shape != (query_points.shape[0],):
                raise ValueError(
                    f"exclude_indices must have one entry per query row, got "
                    f"shape {exclude.shape} for {query_points.shape[0]} rows"
                )

        leaves = self._collect_leaves()
        m = query_points.shape[0]
        out = np.full(m, np.inf, dtype=np.float64)
        if not leaves:
            return out
        centroids = np.stack([leaf[0] for leaf in leaves])
        radii = np.asarray([leaf[1] for leaf in leaves])
        leaf_ids = [leaf[2] for leaf in leaves]
        leaf_points = [self._points[ids] for ids in leaf_ids]

        to_centroid = self.metric.pairwise(query_points, centroids)
        lower = np.maximum(0.0, to_centroid - radii[None, :])
        visit_order = np.argsort(lower, axis=1)

        for row in range(m):
            query = query_points[row]
            bounds = lower[row]
            order = visit_order[row]
            collected: list[np.ndarray] = []
            n_collected = 0
            kth = np.inf
            for leaf in order:
                if bounds[leaf] > kth:
                    break
                ids = leaf_ids[leaf]
                dists = self.metric.to_point(leaf_points[leaf], query)
                if exclude[row] >= 0:
                    dists = dists[ids != exclude[row]]
                collected.append(dists)
                n_collected += dists.shape[0]
                if n_collected >= k:
                    # Keep only the running k smallest between leaves.
                    merged = np.concatenate(collected)
                    merged = np.partition(merged, k - 1)[:k]
                    kth = float(merged[k - 1])
                    collected = [merged]
                    n_collected = k
            out[row] = kth
        return out

    def _collect_leaves(self) -> list[tuple[np.ndarray, float, np.ndarray]]:
        """All non-empty leaves as ``(centroid, radius, active point ids)``."""
        leaves = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                ids = np.asarray(
                    [i for i in node.point_ids if self._active[i]], dtype=np.intp
                )
                if ids.shape[0]:
                    leaves.append((node.centroid, node.radius, ids))
            else:
                stack.append(node.left)
                stack.append(node.right)
        return leaves

    def range_count(self, query, radius: float) -> int:
        query = as_query_point(query, dim=self.dim)
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            d_centroid = self.metric.distance(query, node.centroid)
            if d_centroid - node.radius > radius:
                continue
            if node.is_leaf:
                ids = [i for i in node.point_ids if self._active[i]]
                if ids:
                    dists = self.metric.to_point(
                        self._points[np.asarray(ids, dtype=np.intp)], query
                    )
                    count += int(np.count_nonzero(dists <= radius))
            else:
                stack.append(node.left)
                stack.append(node.right)
        return count

    def remove(self, index: int) -> None:
        # Lazy removal: ball radii remain valid (possibly loose) bounds.
        self._deactivate(index)
