"""Index substrates: every structure implements the incremental-NN protocol.

The registry (:func:`build_index`) lets the evaluation harness and the
examples select back-ends by name, mirroring the paper's Section 7.1 where
the cover tree and a sequential scan serve as interchangeable back-ends.
"""

from repro.indexes.ball_tree import BallTreeIndex
from repro.indexes.base import Index, IndexCapabilityError
from repro.indexes.bulk_knn import bulk_knn, bulk_knn_distances
from repro.indexes.cover_tree import CoverTreeIndex
from repro.indexes.kd_tree import KDTreeIndex
from repro.indexes.linear_scan import LinearScanIndex
from repro.indexes.m_tree import MTreeIndex
from repro.indexes.r_star_tree import RStarTreeIndex
from repro.indexes.rdnn_tree import RdNNTreeIndex
from repro.indexes.vp_tree import VPTreeIndex

__all__ = [
    "Index",
    "IndexCapabilityError",
    "LinearScanIndex",
    "KDTreeIndex",
    "CoverTreeIndex",
    "VPTreeIndex",
    "BallTreeIndex",
    "MTreeIndex",
    "RStarTreeIndex",
    "RdNNTreeIndex",
    "bulk_knn",
    "bulk_knn_distances",
    "build_index",
    "create_index",
    "resolve_index_name",
    "INDEX_ALIASES",
    "INDEX_REGISTRY",
]

#: Canonical backend names.  Generic sweeps (the conformance oracle, the
#: build benchmarks) iterate this mapping, so every entry must construct
#: from ``(data, metric)`` alone; the RdNN-tree (which needs a fixed
#: ``k``) is reachable through :func:`create_index` only.
INDEX_REGISTRY = {
    "linear-scan": LinearScanIndex,
    "kd-tree": KDTreeIndex,
    "cover-tree": CoverTreeIndex,
    "vp-tree": VPTreeIndex,
    "ball-tree": BallTreeIndex,
    "m-tree": MTreeIndex,
    "r-star-tree": RStarTreeIndex,
}

#: Short aliases accepted by :func:`create_index` (and by the engine
#: registry / :class:`repro.Service` ``backend=`` argument), mapping to
#: canonical registry names.
INDEX_ALIASES = {
    "linear": "linear-scan",
    "scan": "linear-scan",
    "kd": "kd-tree",
    "cover": "cover-tree",
    "vp": "vp-tree",
    "ball": "ball-tree",
    "m": "m-tree",
    "rstar": "r-star-tree",
    "r*": "r-star-tree",
    "rdnn": "rdnn-tree",
}

#: Name-constructible backends outside the uniform registry (see the
#: INDEX_REGISTRY note): constructors with required extra arguments.
_SPECIAL_INDEXES = {"rdnn-tree": RdNNTreeIndex}


def resolve_index_name(name: str) -> str:
    """Canonicalize a backend name or alias (``"kd"`` -> ``"kd-tree"``)."""
    key = str(name).lower()
    key = INDEX_ALIASES.get(key, key)
    if key not in INDEX_REGISTRY and key not in _SPECIAL_INDEXES:
        known = sorted(INDEX_REGISTRY) + sorted(_SPECIAL_INDEXES)
        raise ValueError(
            f"unknown index {name!r}; known: {known} "
            f"(aliases: {sorted(INDEX_ALIASES)})"
        )
    return key


def build_index(name: str, data, metric=None, **kwargs) -> Index:
    """Construct a registered index by its canonical name.

    Parameters
    ----------
    name:
        One of ``linear-scan``, ``kd-tree``, ``cover-tree``, ``vp-tree``,
        ``ball-tree``, ``m-tree``, ``r-star-tree``.
    data:
        ``(n, dim)`` point matrix.
    metric:
        Metric name or :class:`~repro.distances.Metric` instance.
    kwargs:
        Forwarded to the index constructor (e.g. ``leaf_size``).
    """
    try:
        cls = INDEX_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown index {name!r}; known: {sorted(INDEX_REGISTRY)}"
        ) from None
    return cls(data, metric=metric, **kwargs)


def create_index(name: str, data, metric=None, **kwargs) -> Index:
    """Construct an index backend by name *or alias* (the front door).

    Accepts everything :func:`build_index` does plus the short aliases in
    :data:`INDEX_ALIASES` (``"kd"``, ``"rstar"``, ``"ball"``, ...) and the
    RdNN-tree (``create_index("rdnn", data, k=10)`` — its fixed ``k`` is a
    required keyword).  This is the mirror of :func:`repro.create_engine`
    on the storage side.
    """
    key = resolve_index_name(name)
    if key in _SPECIAL_INDEXES:
        return _SPECIAL_INDEXES[key](data, metric=metric, **kwargs)
    return build_index(key, data, metric=metric, **kwargs)
