"""Index substrates: every structure implements the incremental-NN protocol.

The registry (:func:`build_index`) lets the evaluation harness and the
examples select back-ends by name, mirroring the paper's Section 7.1 where
the cover tree and a sequential scan serve as interchangeable back-ends.
"""

from repro.indexes.ball_tree import BallTreeIndex
from repro.indexes.base import Index, IndexCapabilityError
from repro.indexes.bulk_knn import bulk_knn, bulk_knn_distances
from repro.indexes.cover_tree import CoverTreeIndex
from repro.indexes.kd_tree import KDTreeIndex
from repro.indexes.linear_scan import LinearScanIndex
from repro.indexes.m_tree import MTreeIndex
from repro.indexes.r_star_tree import RStarTreeIndex
from repro.indexes.rdnn_tree import RdNNTreeIndex
from repro.indexes.vp_tree import VPTreeIndex

__all__ = [
    "Index",
    "IndexCapabilityError",
    "LinearScanIndex",
    "KDTreeIndex",
    "CoverTreeIndex",
    "VPTreeIndex",
    "BallTreeIndex",
    "MTreeIndex",
    "RStarTreeIndex",
    "RdNNTreeIndex",
    "bulk_knn",
    "bulk_knn_distances",
    "build_index",
    "INDEX_REGISTRY",
]

INDEX_REGISTRY = {
    "linear-scan": LinearScanIndex,
    "kd-tree": KDTreeIndex,
    "cover-tree": CoverTreeIndex,
    "vp-tree": VPTreeIndex,
    "ball-tree": BallTreeIndex,
    "m-tree": MTreeIndex,
    "r-star-tree": RStarTreeIndex,
}


def build_index(name: str, data, metric=None, **kwargs) -> Index:
    """Construct a registered index by name.

    Parameters
    ----------
    name:
        One of ``linear-scan``, ``kd-tree``, ``cover-tree``, ``vp-tree``,
        ``m-tree``, ``r-star-tree``.
    data:
        ``(n, dim)`` point matrix.
    metric:
        Metric name or :class:`~repro.distances.Metric` instance.
    kwargs:
        Forwarded to the index constructor (e.g. ``leaf_size``).
    """
    try:
        cls = INDEX_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown index {name!r}; known: {sorted(INDEX_REGISTRY)}"
        ) from None
    return cls(data, metric=metric, **kwargs)
