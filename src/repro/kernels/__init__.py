"""Dispatch layer for the library's top profiled numeric kernels.

Profiling the Fig-8-style end-to-end workload (see
``benchmarks/results/kernel_profile.txt``) attributes most of the numeric
runtime to two kernels: the pairwise Euclidean distance matrix and the
k-smallest pool update that batched tree descents merge candidate blocks
into.  This package isolates those kernels (plus the broadcast
``to_point_many`` block used by the vectorized RDT filter) behind a small
dispatch table so that:

* the NumPy reference implementations (:mod:`repro.kernels.numpy_impl`)
  stay the bit-tested semantics of record,
* an optional Numba-compiled layer (:mod:`repro.kernels.numba_impl`) can
  take over transparently when ``numba`` is importable — the import is
  guarded, so the package never *requires* it, and
* ``REPRO_JIT=0`` in the environment pins the NumPy fallback even when
  Numba is present (the escape hatch for debugging and for the CI leg
  that keeps the fallback exercised).

Call sites use the module-level wrappers (:func:`euclidean_pairwise`,
:func:`euclidean_to_point_many`, :func:`keeper_update`), which also feed
the per-kernel call/byte counters of
:mod:`repro.utils.profiling` when a profile is installed.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.kernels import numpy_impl

__all__ = [
    "KERNEL_NAMES",
    "active_backend",
    "euclidean_pairwise",
    "euclidean_pairwise_stats",
    "euclidean_to_point_many",
    "jit_available",
    "jit_enabled",
    "keeper_update",
    "refresh",
]

#: Names of the dispatched kernels, in profile order.
KERNEL_NAMES = ("euclidean_pairwise", "euclidean_to_point_many", "keeper_update")

#: Active profile installed by :func:`repro.utils.profiling.profile_kernels`
#: (``None`` when profiling is off).
_PROFILE = None

_ACTIVE: dict[str, Callable] = {}
_BACKEND: str = "numpy"


def jit_available() -> bool:
    """True when the optional Numba layer imported successfully."""
    from repro.kernels import numba_impl

    return numba_impl.AVAILABLE


def jit_enabled() -> bool:
    """True when compiled kernels are both available and not disabled.

    ``REPRO_JIT=0`` disables the compiled layer; any other value (or an
    unset variable) leaves it on whenever Numba is importable.
    """
    return jit_available() and os.environ.get("REPRO_JIT", "1") != "0"


def refresh() -> None:
    """Rebuild the dispatch table from the current environment.

    Called once at import; tests (and anything toggling ``REPRO_JIT`` at
    runtime) call it again to re-resolve the active backend.
    """
    global _BACKEND
    if jit_enabled():
        from repro.kernels import numba_impl as impl

        _BACKEND = "numba"
    else:
        impl = numpy_impl
        _BACKEND = "numpy"
    for name in KERNEL_NAMES:
        _ACTIVE[name] = getattr(impl, name)


def active_backend(name: str | None = None) -> str:
    """Return the backend ("numpy" or "numba") serving the dispatch table."""
    if name is not None and name not in KERNEL_NAMES:
        raise KeyError(f"unknown kernel {name!r}; known: {KERNEL_NAMES}")
    return _BACKEND


def euclidean_pairwise(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Dispatched Euclidean distance matrix (see ``numpy_impl`` for semantics)."""
    out = _ACTIVE["euclidean_pairwise"](X, Y)
    if _PROFILE is not None:
        _PROFILE.record(
            "euclidean_pairwise", out.size, X.nbytes + Y.nbytes + out.nbytes
        )
    return out


def euclidean_pairwise_stats(
    X: np.ndarray, Y: np.ndarray, yy: np.ndarray, mu: np.ndarray | None
) -> np.ndarray:
    """Expansion pairwise against precomputed Y stats (NumPy-only variant).

    Not in the dispatch table: it is a specialization of
    ``euclidean_pairwise`` for the NumPy backend (the compiled layer's
    fused loop needs no Y stats and should be preferred when active — use
    :func:`active_backend` to choose).  Profiled under the
    ``euclidean_pairwise`` counter, since it computes the same matrix.
    """
    out = numpy_impl.euclidean_pairwise_stats(X, Y, yy, mu)
    if _PROFILE is not None:
        _PROFILE.record(
            "euclidean_pairwise", out.size, X.nbytes + Y.nbytes + out.nbytes
        )
    return out


def euclidean_to_point_many(X: np.ndarray, Ys: np.ndarray) -> np.ndarray:
    """Dispatched to_point-consistent distance block (columns match to_point)."""
    out = _ACTIVE["euclidean_to_point_many"](X, Ys)
    if _PROFILE is not None:
        _PROFILE.record(
            "euclidean_to_point_many", out.size, X.nbytes + Ys.nbytes + out.nbytes
        )
    return out


def keeper_update(
    best: np.ndarray, kth: np.ndarray, rows: np.ndarray, cand: np.ndarray
) -> None:
    """Dispatched in-place k-smallest pool merge (see ``numpy_impl``)."""
    _ACTIVE["keeper_update"](best, kth, rows, cand)
    if _PROFILE is not None:
        _PROFILE.record("keeper_update", cand.shape[0], cand.nbytes)


refresh()
