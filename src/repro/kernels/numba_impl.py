"""Optional Numba-compiled implementations of the dispatched hot kernels.

Importing this module never fails: when Numba is absent (or too old to
compile the kernels) :data:`AVAILABLE` is ``False`` and the dispatch table
in :mod:`repro.kernels` keeps the NumPy reference implementations.  The
container images used for the fast CI tier do not ship Numba, so the
NumPy fallback is the continuously bit-tested path; a dedicated CI leg
installs Numba to exercise this module, and ``REPRO_JIT=0`` pins the
fallback even when Numba is importable.

Agreement contract with :mod:`repro.kernels.numpy_impl`:

``keeper_update``
    Bit-identical — it is pure selection (replace-the-max streaming
    insertion keeps exactly the k-smallest value multiset, so the ``kth``
    radii match the partition-based reference exactly).

``euclidean_to_point_many``
    Fused difference loop; same subtraction/square/accumulate sequence as
    the einsum reduction, without materializing the ``(n, m, d)``
    temporary.  Accumulation order matches the contiguous last-axis
    reduction, so columns remain consistent with ``to_point``.

``euclidean_pairwise``
    Small blocks (``r * c * d <= _FUSED_MAX``) use the fused difference
    loop — more accurate than the dot expansion and faster than a BLAS
    round-trip at tree-leaf sizes.  Large blocks delegate to the NumPy
    expansion, whose BLAS matmul a scalar loop cannot beat.  Distances may
    therefore differ from the reference in the last ulp; every consumer
    compares through the tolerance layer, which absorbs exactly this class
    of cross-kernel round-off.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import numpy_impl

__all__ = ["AVAILABLE", "euclidean_pairwise", "euclidean_to_point_many", "keeper_update"]

try:  # pragma: no cover - exercised only on the numba CI leg
    from numba import njit

    AVAILABLE = True
except Exception:  # pragma: no cover - the default local path
    njit = None
    AVAILABLE = False

#: Block volume (rows * cols * dims) below which the fused pairwise loop
#: beats the BLAS expansion (call overhead dominates small blocks).
_FUSED_MAX = 32768

if AVAILABLE:  # pragma: no cover - exercised only on the numba CI leg

    @njit(cache=True, nogil=True)
    def _pairwise_fused(X, Y):
        r = X.shape[0]
        c = Y.shape[0]
        d = X.shape[1]
        out = np.zeros((r, c), dtype=X.dtype)
        if d == 0:
            return out
        for i in range(r):
            for j in range(c):
                # Zero of the input dtype, so float32 blocks accumulate in
                # float32 like the einsum reduction they stand in for.
                acc = X[i, 0] - X[i, 0]
                for t in range(d):
                    diff = X[i, t] - Y[j, t]
                    acc += diff * diff
                out[i, j] = np.sqrt(acc)
        return out

    @njit(cache=True, nogil=True)
    def _keeper_update_compiled(best, kth, rows, cand):
        m = rows.shape[0]
        c = cand.shape[1]
        k = best.shape[1]
        for i in range(m):
            r = rows[i]
            radius = kth[r]
            for j in range(c):
                v = cand[i, j]
                if v < radius:
                    arg = 0
                    top = best[r, 0]
                    for t in range(1, k):
                        if best[r, t] > top:
                            top = best[r, t]
                            arg = t
                    best[r, arg] = v
                    top = best[r, 0]
                    for t in range(1, k):
                        if best[r, t] > top:
                            top = best[r, t]
                    radius = top
            kth[r] = radius

    def euclidean_pairwise(X, Y):
        if X.shape[0] * Y.shape[0] * X.shape[1] <= _FUSED_MAX:
            X = np.ascontiguousarray(X)
            Y = np.ascontiguousarray(Y)
            return _pairwise_fused(X, Y)
        return numpy_impl.euclidean_pairwise(X, Y)

    def euclidean_to_point_many(X, Ys):
        X = np.ascontiguousarray(X)
        Ys = np.ascontiguousarray(Ys)
        return _pairwise_fused(X, Ys)

    def keeper_update(best, kth, rows, cand):
        if cand.shape[1] == 0 or rows.shape[0] == 0:
            return
        if cand.dtype != best.dtype:
            cand = cand.astype(best.dtype)
        _keeper_update_compiled(
            best, kth, np.ascontiguousarray(rows), np.ascontiguousarray(cand)
        )

else:
    euclidean_pairwise = numpy_impl.euclidean_pairwise
    euclidean_to_point_many = numpy_impl.euclidean_to_point_many
    keeper_update = numpy_impl.keeper_update
