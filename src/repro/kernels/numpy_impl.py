"""Reference NumPy implementations of the dispatched hot kernels.

These are the authoritative semantics: the optional compiled layer in
:mod:`repro.kernels.numba_impl` must agree with them (bit-for-bit for the
pure selection kernel, to round-off for the arithmetic ones).  They are
also the production path whenever Numba is absent or disabled, so they are
kept identical to the historical in-line implementations they were
extracted from (``EuclideanMetric._dist_matrix``, the broadcast
``to_point_many`` kernel, and ``KSmallestKeeper.update``) — bit-for-bit.

All three kernels are dtype-preserving: float32 inputs produce float32
outputs with no intermediate upcast (the scalars ``2.0``/``0.0`` follow
NumPy's weak scalar promotion).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean_pairwise",
    "euclidean_pairwise_stats",
    "euclidean_to_point_many",
    "euclidean_y_stats",
    "keeper_update",
]


def euclidean_pairwise(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Full Euclidean distance matrix via the centered dot expansion.

    ``||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y``, clipped against negative
    round-off before the square root.  Distances are translation
    invariant, so when the data sits far from the origin relative to its
    spread, both sides are centered on Y's mean first: without this, such
    data loses ``~eps * ||x||^2 / d(x, y)`` absolute accuracy to
    cancellation in the expansion — far beyond the library's comparison
    tolerance.  Near-origin data is left untouched (the expansion is
    already accurate there, and exactly-representable inputs keep their
    exact distances).  The centering decision and offset depend only on
    ``Y``, so results are independent of how callers chunk ``X``.
    """
    yy = np.einsum("ij,ij->i", Y, Y)
    mu = Y.mean(axis=0)
    offset_sq = float(mu @ mu)
    spread_sq = max(float(yy.mean()) - offset_sq, 0.0)
    if offset_sq > 100.0 * spread_sq:
        X = X - mu
        Y = Y - mu
        yy = np.einsum("ij,ij->i", Y, Y)
    xx = np.einsum("ij,ij->i", X, X)
    sq = xx[:, None] + yy[None, :] - 2.0 * (X @ Y.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def euclidean_y_stats(
    Y: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Hoist :func:`euclidean_pairwise`'s Y-side work out of the call.

    Returns ``(Y', yy, mu)``: the Y block (centered on its mean when the
    pairwise kernel's Y-only centering decision fires, untouched
    otherwise), its row squared norms, and the centering offset (``None``
    when centering did not fire).  Feeding these to
    :func:`euclidean_pairwise_stats` reproduces ``euclidean_pairwise(X,
    Y)`` bit-for-bit for any ``X`` — the recipe below is the pairwise
    kernel's own, step for step.
    """
    yy = np.einsum("ij,ij->i", Y, Y)
    mu = Y.mean(axis=0)
    offset_sq = float(mu @ mu)
    spread_sq = max(float(yy.mean()) - offset_sq, 0.0)
    if offset_sq > 100.0 * spread_sq:
        Y = Y - mu
        yy = np.einsum("ij,ij->i", Y, Y)
        return Y, yy, mu
    return Y, yy, None


def euclidean_pairwise_stats(
    X: np.ndarray, Y: np.ndarray, yy: np.ndarray, mu: np.ndarray | None
) -> np.ndarray:
    """:func:`euclidean_pairwise` with Y's stats hoisted out of the call.

    ``Y`` must already be centered on ``mu`` when ``mu`` is not ``None``
    (then ``X`` is centered here), and ``yy`` must be the squared norms of
    the rows as passed.  Given stats produced by the same recipe as
    :func:`euclidean_pairwise` — including its Y-only centering decision —
    the result is bit-identical to calling it directly.  Tree descents use
    this against per-leaf stats frozen at flatten time, shedding the
    per-call mean/spread work that dominates narrow leaf blocks.
    """
    if mu is not None:
        X = X - mu
    xx = np.einsum("ij,ij->i", X, X)
    sq = xx[:, None] + yy[None, :] - 2.0 * (X @ Y.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def euclidean_to_point_many(X: np.ndarray, Ys: np.ndarray) -> np.ndarray:
    """Distance matrix ``D[i, j] = ||X[i] - Ys[j]||`` via the difference kernel.

    The 3-D einsum reduces each ``(i, j)`` pair over the contiguous last
    axis exactly like the single-point kernel's 2-D einsum, so every
    column is bit-identical to a per-point ``to_point`` call — the
    guarantee the batched RDT filter's strict tie comparisons rely on.
    """
    diff = X[:, None, :] - Ys[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def keeper_update(
    best: np.ndarray, kth: np.ndarray, rows: np.ndarray, cand: np.ndarray
) -> None:
    """Merge a candidate block into a k-smallest pool, in place.

    ``best`` is the ``(m, k)`` unsorted pool of smallest distances seen so
    far, ``kth`` its per-row maxima (the pruning radii), ``rows`` the pool
    rows the ``(len(rows), c)`` block ``cand`` belongs to.  Rows whose
    smallest candidate cannot beat their current radius are skipped before
    the merge: a candidate ``>= kth`` can change neither the k-smallest
    value multiset nor its maximum, so the skip is exact, and it removes
    most of the partition work deep in a tree descent where few rows still
    improve.
    """
    if cand.shape[1] == 0 or rows.shape[0] == 0:
        return
    k = best.shape[1]
    useful = cand.min(axis=1) < kth[rows]
    if not useful.any():
        return
    if not useful.all():
        rows = rows[useful]
        cand = cand[useful]
    merged = np.concatenate([best[rows], cand], axis=1)
    new_best = np.partition(merged, k - 1, axis=1)[:, :k]
    best[rows] = new_best
    kth[rows] = new_best.max(axis=1)
