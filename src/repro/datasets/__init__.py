"""Dataset generators and stand-ins for the paper's evaluation corpora."""

from repro.datasets.standins import (
    DATASET_SPECS,
    DatasetSpec,
    aloi_standin,
    fct_standin,
    imagenet_standin,
    load_standin,
    mnist_standin,
    sequoia_standin,
)
from repro.datasets.synthetic import (
    clustered_manifolds,
    embedded_manifold,
    gaussian_blob,
    gaussian_mixture,
    swiss_roll,
    uniform_hypercube,
)

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "load_standin",
    "sequoia_standin",
    "aloi_standin",
    "fct_standin",
    "mnist_standin",
    "imagenet_standin",
    "uniform_hypercube",
    "gaussian_blob",
    "gaussian_mixture",
    "embedded_manifold",
    "swiss_roll",
    "clustered_manifolds",
]
