"""Synthetic stand-ins for the paper's evaluation corpora.

The paper evaluates on five datasets that cannot be redistributed (or, for
Imagenet features, recomputed without a GPU stack): Sequoia, ALOI, Forest
Cover Type, MNIST and Imagenet-fc.  Following the reproduction's
substitution rule, each is replaced by a generator matched on the three
quantities the algorithms actually react to — cardinality ``n``,
representational dimension ``D``, and intrinsic dimensionality (the
paper's Table 1) — plus the qualitative density structure (clusteredness,
imbalance, heavy tails) discussed in Section 8.

Default sizes are scaled down so the full benchmark suite runs on a laptop
in minutes; pass ``n=None`` to get the paper-scale cardinality.  The
``DATASET_SPECS`` registry records the paper-side numbers so reports can
print them next to the measured values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import embedded_manifold, gaussian_mixture
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "load_standin",
    "sequoia_standin",
    "aloi_standin",
    "fct_standin",
    "mnist_standin",
    "imagenet_standin",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Paper-side facts about one evaluation dataset (Table 1 and §7)."""

    name: str
    paper_n: int
    paper_dim: int
    paper_id_mle: float
    paper_id_gp: float
    paper_id_takens: float
    default_n: int
    default_dim: int


DATASET_SPECS = {
    "sequoia": DatasetSpec("sequoia", 62_174, 2, 1.84, 1.79, 1.78, 8000, 2),
    "aloi": DatasetSpec("aloi", 110_250, 641, 7.71, 1.98, 2.16, 4000, 641),
    "fct": DatasetSpec("fct", 581_012, 53, 3.54, 3.87, 3.65, 8000, 53),
    "mnist": DatasetSpec("mnist", 70_000, 784, 12.15, 4.39, 4.68, 4000, 784),
    "imagenet": DatasetSpec("imagenet", 1_281_167, 4096, float("nan"),
                            float("nan"), float("nan"), 6000, 256),
}


def sequoia_standin(n: int | None = None, seed=0) -> np.ndarray:
    """California points of interest: 2-D, ID ~ 1.8.

    Locations concentrate along a one-dimensional coastline/highway spine
    with town-like clusters and a sparse rural background — a noisy curve
    (ID -> 1) plus 2-D blobs pulls the mixture's ID to the paper's ~1.8.
    """
    spec = DATASET_SPECS["sequoia"]
    n = check_positive_int(n if n is not None else spec.default_n, name="n")
    rng = ensure_rng(seed)
    n_spine = int(0.45 * n)
    n_towns = int(0.40 * n)
    n_rural = n - n_spine - n_towns
    # Coastline: a smooth parametric curve with lateral jitter.
    u = rng.uniform(size=n_spine)
    spine = np.stack(
        [u + 0.05 * np.sin(9.0 * u), 0.3 * np.sin(2.5 * u) + 0.6 * u], axis=1
    )
    spine += rng.normal(scale=0.004, size=spine.shape)
    # Towns: tight 2-D blobs seeded near the spine.
    centers = spine[rng.choice(n_spine, size=25)]
    towns = centers[rng.choice(25, size=n_towns)] + rng.normal(
        scale=0.012, size=(n_towns, 2)
    )
    rural = rng.uniform(low=-0.1, high=1.1, size=(n_rural, 2))
    points = np.vstack([spine, towns, rural])
    return points[rng.permutation(points.shape[0])]


def _clusters_on_global_manifold(
    n: int,
    dim: int,
    n_clusters: int,
    global_dim: int,
    local_dim: int,
    center_scale: float,
    patch_scale: float,
    noise: float,
    seed,
) -> np.ndarray:
    """Clusters whose centers themselves lie on a low-dim global manifold.

    Image corpora exhibit two scales of structure: within an object/class
    only a few degrees of freedom vary (``local_dim``), while the classes
    are arranged along a low-dimensional global layout (``global_dim``).
    Both the MLE neighborhoods and the correlation-integral fit range then
    see dimensionalities far below the representational dimension — the
    geometry behind the paper's Table 1.
    """
    rng = ensure_rng(seed)
    centers = embedded_manifold(
        max(n_clusters, 2),
        dim,
        global_dim,
        noise=0.0,
        latent_scale=center_scale,
        seed=rng,
    )
    sizes = np.full(n_clusters, n // n_clusters)
    sizes[: n % n_clusters] += 1
    parts = []
    for cluster, size in enumerate(sizes):
        if size == 0:
            continue
        patch = embedded_manifold(
            int(size),
            dim,
            local_dim,
            noise=noise,
            latent_scale=patch_scale,
            seed=rng,
        )
        parts.append(centers[cluster] + patch)
    points = np.vstack(parts)
    return points[rng.permutation(points.shape[0])]


def aloi_standin(n: int | None = None, dim: int | None = None, seed=0) -> np.ndarray:
    """Amsterdam Library of Object Images: 641-D features, very low ID.

    One manifold patch per photographed object (a few pose/illumination
    degrees of freedom each), the objects arranged along a low-dimensional
    global layout.  Measured ID lands in the paper's "low" band (Table 1
    reports 2.0–7.7 across estimators); the cluster count scales with
    ``n`` so the MLE's 100-NN neighborhoods stay inside a single patch, as
    they do at the paper's full 110k scale.
    """
    spec = DATASET_SPECS["aloi"]
    n = check_positive_int(n if n is not None else spec.default_n, name="n")
    dim = check_positive_int(dim if dim is not None else spec.default_dim, name="dim")
    n_clusters = max(3, n // 400)
    return _clusters_on_global_manifold(
        n,
        dim,
        n_clusters,
        global_dim=2,
        local_dim=4,
        center_scale=2.0,
        patch_scale=0.5,
        noise=0.01,
        seed=seed,
    )


def fct_standin(n: int | None = None, dim: int | None = None, seed=0) -> np.ndarray:
    """Forest Cover Type: 53 standardized cartographic features, ID ~ 3.5.

    A handful of correlated latent factors (elevation, slope, soil class)
    drive all attributes; cluster sizes are strongly imbalanced (two cover
    types dominate the real data).  Standardized to z-scores like the
    paper's preprocessing.
    """
    spec = DATASET_SPECS["fct"]
    n = check_positive_int(n if n is not None else spec.default_n, name="n")
    dim = check_positive_int(dim if dim is not None else spec.default_dim, name="dim")
    rng = ensure_rng(seed)
    weights = np.array([0.37, 0.30, 0.12, 0.08, 0.06, 0.04, 0.03])
    base = gaussian_mixture(
        n,
        dim=4,
        n_clusters=7,
        separation=3.0,
        spread=1.0,
        weights=weights,
        seed=rng,
    )
    mixing = rng.normal(size=(4, dim)) / 2.0
    points = base @ mixing + rng.normal(scale=0.02, size=(n, dim))
    points -= points.mean(axis=0)
    std = points.std(axis=0)
    std[std == 0.0] = 1.0
    return points / std


def mnist_standin(n: int | None = None, dim: int | None = None, seed=0) -> np.ndarray:
    """MNIST digits: 784-D pixels, the highest-ID dataset of the study.

    Ten digit clusters, each a latent-dimension-12 nonlinear patch, the
    cluster centers on a 3-D global layout.  Measured ID lands in the
    paper's "high" band (Table 1 reports 4.4–12.2 across estimators), well
    above the Sequoia/FCT/ALOI stand-ins — the ordering that drives the
    paper's cross-dataset conclusions.
    """
    spec = DATASET_SPECS["mnist"]
    n = check_positive_int(n if n is not None else spec.default_n, name="n")
    dim = check_positive_int(dim if dim is not None else spec.default_dim, name="dim")
    return _clusters_on_global_manifold(
        n,
        dim,
        n_clusters=10,  # one cluster per digit
        global_dim=3,
        local_dim=12,
        center_scale=1.5,
        patch_scale=0.8,
        noise=0.03,
        seed=seed,
    )


def imagenet_standin(n: int | None = None, dim: int | None = None, seed=0) -> np.ndarray:
    """Imagenet fc-features: very high-D, heavy-tailed, many categories.

    Deep-feature geometry: a moderate latent dimension (~20), heavy-tailed
    latent magnitudes (Student-t), and many category clusters.  The default
    ambient dimension is scaled from 4096 to 256 so the scalability
    benchmarks stay laptop-sized; pass ``dim=4096`` for paper-scale
    geometry (memory permitting).
    """
    spec = DATASET_SPECS["imagenet"]
    n = check_positive_int(n if n is not None else spec.default_n, name="n")
    dim = check_positive_int(dim if dim is not None else spec.default_dim, name="dim")
    rng = ensure_rng(seed)
    n_clusters = max(8, n // 500)
    sizes = np.full(n_clusters, n // n_clusters)
    sizes[: n % n_clusters] += 1
    parts = []
    for size in sizes:
        if size == 0:
            continue
        center = rng.normal(scale=3.0, size=dim)
        patch = embedded_manifold(
            int(size),
            ambient_dim=dim,
            intrinsic_dim=20,
            noise=0.02,
            nonlinear=True,
            latent_scale=0.5,
            heavy_tailed=True,
            seed=rng,
        )
        parts.append(center + patch)
    points = np.vstack(parts)
    return points[rng.permutation(points.shape[0])]


_LOADERS = {
    "sequoia": sequoia_standin,
    "aloi": aloi_standin,
    "fct": fct_standin,
    "mnist": mnist_standin,
    "imagenet": imagenet_standin,
}


def load_standin(name: str, n: int | None = None, seed=0, **kwargs) -> np.ndarray:
    """Load a paper-dataset stand-in by name (see ``DATASET_SPECS``)."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; known: {sorted(_LOADERS)}"
        ) from None
    return loader(n=n, seed=seed, **kwargs)
