"""Synthetic dataset generators with controllable intrinsic dimensionality.

RDT's behaviour is governed by the *intrinsic* dimensionality (ID) of the
data, not its representational dimension, so the generators here are
parameterized to decouple the two: points are drawn on low-dimensional
latent structures and embedded — linearly or through a smooth nonlinear
map — into an ambient space of arbitrary dimension, with optional additive
noise.  The paper stand-ins (:mod:`repro.datasets.standins`) are built from
these primitives.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "uniform_hypercube",
    "gaussian_blob",
    "gaussian_mixture",
    "embedded_manifold",
    "swiss_roll",
    "clustered_manifolds",
]


def uniform_hypercube(n: int, dim: int, seed=None) -> np.ndarray:
    """Uniform points in the unit hypercube — ID equals the dimension."""
    check_positive_int(n, name="n")
    check_positive_int(dim, name="dim")
    return ensure_rng(seed).uniform(size=(n, dim))


def gaussian_blob(n: int, dim: int, scale: float = 1.0, seed=None) -> np.ndarray:
    """A single isotropic Gaussian — ID equals the dimension."""
    check_positive_int(n, name="n")
    check_positive_int(dim, name="dim")
    return ensure_rng(seed).normal(scale=scale, size=(n, dim))


def gaussian_mixture(
    n: int,
    dim: int,
    n_clusters: int = 10,
    separation: float = 8.0,
    spread: float = 1.0,
    weights=None,
    seed=None,
) -> np.ndarray:
    """A mixture of isotropic Gaussians with controllable imbalance.

    ``weights`` (optional) sets the cluster size distribution; strongly
    skewed weights reproduce the density imbalance of e.g. Forest Cover
    Type, which stresses RDT's density-adaptive termination.
    """
    check_positive_int(n, name="n")
    check_positive_int(dim, name="dim")
    check_positive_int(n_clusters, name="n_clusters")
    rng = ensure_rng(seed)
    if weights is None:
        weights = np.full(n_clusters, 1.0 / n_clusters)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n_clusters,) or (weights < 0).any():
            raise ValueError("weights must be non-negative with one entry per cluster")
        weights = weights / weights.sum()
    centers = rng.normal(scale=separation, size=(n_clusters, dim))
    assignments = rng.choice(n_clusters, size=n, p=weights)
    return centers[assignments] + rng.normal(scale=spread, size=(n, dim))


def embedded_manifold(
    n: int,
    ambient_dim: int,
    intrinsic_dim: int,
    noise: float = 0.01,
    nonlinear: bool = True,
    latent_scale: float = 1.0,
    heavy_tailed: bool = False,
    seed=None,
) -> np.ndarray:
    """A smooth ``intrinsic_dim``-manifold embedded in ``ambient_dim`` space.

    Latent coordinates are mapped through one random ``tanh`` layer (when
    ``nonlinear``) followed by a random linear expansion — a smooth,
    locally bi-Lipschitz map, so the local intrinsic dimensionality of the
    output matches ``intrinsic_dim`` up to the additive noise floor.
    ``heavy_tailed`` draws the latents from a Student-t(3) instead of a
    Gaussian, producing the dense-core/sparse-tail geometry of learned
    image features.
    """
    check_positive_int(n, name="n")
    check_positive_int(ambient_dim, name="ambient_dim")
    check_positive_int(intrinsic_dim, name="intrinsic_dim")
    if intrinsic_dim > ambient_dim:
        raise ValueError(
            f"intrinsic_dim={intrinsic_dim} cannot exceed ambient_dim={ambient_dim}"
        )
    rng = ensure_rng(seed)
    if heavy_tailed:
        latent = rng.standard_t(df=3.0, size=(n, intrinsic_dim)) * latent_scale
    else:
        latent = rng.normal(size=(n, intrinsic_dim)) * latent_scale
    if nonlinear:
        hidden_dim = max(2 * intrinsic_dim, 8)
        w1 = rng.normal(size=(intrinsic_dim, hidden_dim)) / np.sqrt(intrinsic_dim)
        b1 = rng.normal(size=hidden_dim) * 0.5
        hidden = np.tanh(latent @ w1 + b1)
        # Mix the raw latents back in so the map stays locally invertible
        # (pure tanh layers can collapse directions in saturated regions).
        hidden = np.concatenate([hidden, latent], axis=1)
    else:
        hidden = latent
    w2 = rng.normal(size=(hidden.shape[1], ambient_dim)) / np.sqrt(hidden.shape[1])
    points = hidden @ w2
    if noise > 0.0:
        points = points + rng.normal(scale=noise, size=points.shape)
    return points


def swiss_roll(n: int, ambient_dim: int = 3, noise: float = 0.05, seed=None) -> np.ndarray:
    """The classic 2-manifold, optionally rotated into a higher ambient space."""
    check_positive_int(n, name="n")
    if ambient_dim < 3:
        raise ValueError(f"swiss roll needs ambient_dim >= 3, got {ambient_dim}")
    rng = ensure_rng(seed)
    angle = 1.5 * np.pi * (1.0 + 2.0 * rng.uniform(size=n))
    height = 21.0 * rng.uniform(size=n)
    base = np.stack(
        [angle * np.cos(angle), height, angle * np.sin(angle)], axis=1
    )
    if ambient_dim > 3:
        rotation, _ = np.linalg.qr(rng.normal(size=(ambient_dim, ambient_dim)))
        padded = np.zeros((n, ambient_dim))
        padded[:, :3] = base
        base = padded @ rotation
    if noise > 0.0:
        base = base + rng.normal(scale=noise, size=base.shape)
    return base


def clustered_manifolds(
    n: int,
    ambient_dim: int,
    n_clusters: int,
    intrinsic_dim: int,
    separation: float = 6.0,
    noise: float = 0.01,
    seed=None,
) -> np.ndarray:
    """Many well-separated clusters, each a small manifold patch.

    Models image corpora such as ALOI (one cluster per photographed
    object, a few pose/illumination degrees of freedom within each): the
    *local* ID is ``intrinsic_dim`` while global estimators see mostly the
    between-cluster geometry — the MLE-vs-correlation-dimension gap of the
    paper's Table 1.
    """
    check_positive_int(n_clusters, name="n_clusters")
    rng = ensure_rng(seed)
    sizes = np.full(n_clusters, n // n_clusters)
    sizes[: n % n_clusters] += 1
    parts = []
    for size in sizes:
        if size == 0:
            continue
        center = rng.normal(scale=separation, size=ambient_dim)
        patch = embedded_manifold(
            int(size),
            ambient_dim,
            intrinsic_dim,
            noise=noise,
            nonlinear=True,
            seed=rng,
        )
        parts.append(center + patch)
    return np.vstack(parts)
