"""Setup shim.

The offline environment this reproduction targets has setuptools but no
``wheel`` package, so PEP 660 editable installs (which must build a wheel)
fail.  Keeping a classic ``setup.py`` lets ``pip install -e .`` fall back to
the legacy develop path, which needs no wheel building.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
