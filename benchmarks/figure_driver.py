"""Shared machinery for the per-figure benchmark modules.

Each of the paper's evaluation figures is regenerated as a plain-text table
written to ``benchmarks/results/<experiment>.txt`` (and echoed to stdout).
pytest-benchmark measures representative single-query operations on top of
the same artifacts, so ``pytest benchmarks/ --benchmark-only`` both times
the methods and regenerates every figure/table.

The experiment scales are reduced relative to the paper (see DESIGN.md and
EXPERIMENTS.md): dataset sizes default to a few thousand points so the full
suite finishes on a laptop.  Whoever wants the full-scale run can raise the
module-level size constants — nothing else changes.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.core import suggest_scale
from repro.engines import create_engine
from repro.evaluation import (
    GroundTruth,
    TradeoffCurve,
    format_table,
    render_curves,
    run_engine,
    run_method_batched,
    run_precompute_suite,
    run_tradeoff,
    run_tradeoff_batched,
    sample_query_indices,
    write_bench_json,
)
from repro.indexes import LinearScanIndex

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Parameter sweeps (trimmed relative to the paper's denser grids).
T_GRID = (2.0, 4.0, 6.0, 9.0)
ALPHA_GRID = (1.0, 2.0, 4.0, 8.0, 16.0)


def record(name: str, text: str, data: dict | None = None) -> pathlib.Path:
    """Write one experiment's rendered output and echo it.

    ``data`` is an optional machine-readable twin: when given, it is
    serialized (stable key order) to ``results/<name>.json`` next to the
    text table, so perf trajectories can be diffed across PRs instead of
    re-parsed out of formatted text.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if data is not None:
        write_bench_json(RESULTS_DIR / f"{name}.json", {"benchmark": name, **data})
    print(f"\n=== {name} ===\n{text}\n")
    return path


@dataclass
class FigureArtifacts:
    """Everything a figure module needs for reporting and benchmarking."""

    name: str
    data: np.ndarray
    truth: GroundTruth
    queries: np.ndarray
    index: LinearScanIndex
    #: registry-built engines over the shared forward index
    rdt: object
    rdt_plus: object
    sft: object
    curves: dict[int, list[TradeoffCurve]] = field(default_factory=dict)
    exact_rows: dict[int, list[tuple]] = field(default_factory=dict)
    estimator_rows: dict[int, list[tuple]] = field(default_factory=dict)
    precompute_rows: list[tuple] = field(default_factory=list)


def run_figure_experiment(
    name: str,
    data: np.ndarray,
    ks: tuple[int, ...] = (10, 50, 100),
    n_queries: int = 8,
    include_tpl_for_k: tuple[int, ...] = (),
    include_exact: bool = True,
    t_grid: tuple[float, ...] = T_GRID,
    alpha_grid: tuple[float, ...] = ALPHA_GRID,
) -> FigureArtifacts:
    """The Figures 3-6 protocol on one dataset.

    For every ``k``: tradeoff curves for RDT / RDT+ / SFT, fixed points for
    the estimator-configured RDT+ variants, and (optionally) the exact
    competitors with their preprocessing costs.
    """
    truth = GroundTruth(data)
    queries = sample_query_indices(len(data), n_queries, seed=42)
    index = LinearScanIndex(data)
    # Engines come from the registry — the figure protocol exercises the
    # same construction path as every other driver.
    art = FigureArtifacts(
        name=name,
        data=data,
        truth=truth,
        queries=queries,
        index=index,
        rdt=create_engine("rdt", index),
        rdt_plus=create_engine("rdt+", index),
        sft=create_engine("sft", index),
    )

    estimator_ts = {
        method: suggest_scale(data, method=method, seed=0)
        for method in ("mle", "gp", "takens")
    }

    for k in ks:
        # RDT/RDT+ sweep through the batched engine — the whole query
        # workload is answered in one query_batch call per grid point.
        art.curves[k] = [
            run_tradeoff_batched(
                "RDT",
                lambda t: (
                    lambda qis: art.rdt.query_batch(query_indices=qis, k=k, t=t)
                ),
                t_grid,
                queries,
                truth,
                k,
            ),
            run_tradeoff_batched(
                "RDT+",
                lambda t: (
                    lambda qis: art.rdt_plus.query_batch(
                        query_indices=qis, k=k, t=t
                    )
                ),
                t_grid,
                queries,
                truth,
                k,
            ),
            run_tradeoff(
                "SFT",
                lambda a: (
                    lambda qi: art.sft.query(query_index=qi, k=k, alpha=a)
                ),
                alpha_grid,
                queries,
                truth,
                k,
            ),
        ]
        art.estimator_rows[k] = []
        for method, t_value in estimator_ts.items():
            run = run_method_batched(
                f"RDT+({method.upper()})",
                lambda qis: art.rdt_plus.query_batch(
                    query_indices=qis, k=k, t=t_value
                ),
                queries,
                truth,
                k,
                parameter=t_value,
            )
            art.estimator_rows[k].append(
                (run.method, round(t_value, 2), run.mean_recall, run.mean_seconds)
            )

    if include_exact:
        _run_exact_competitors(art, ks, include_tpl_for_k)
    return art


def _run_exact_competitors(
    art: FigureArtifacts, ks: tuple[int, ...], include_tpl_for_k: tuple[int, ...]
) -> None:
    data, truth, queries = art.data, art.truth, art.queries

    # Every competitor comes from the engine registry, and its
    # preprocessing runs through the uniform harness timer (Figure 8's
    # precompute columns come from these reports): building the engine IS
    # the method's preprocessing — kNN self-join + fits for MRkNNCoP, one
    # augmented tree per k for RdNN, the R*-tree for TPL.
    builders = {
        "MRkNNCoP": lambda: create_engine("mrknncop", data, k_max=max(ks)),
        f"RdNN-Tree (x{len(ks)} trees)": lambda: {
            k: create_engine("rdnn", data, k=k) for k in ks
        },
    }
    if include_tpl_for_k:
        builders["TPL (R*-tree)"] = lambda: create_engine("tpl", data)
    reports = run_precompute_suite(builders, keep_artifacts=True)
    artifacts = {report.method: report.artifact for report in reports}
    cop = artifacts["MRkNNCoP"]
    rdnn_engines = artifacts[f"RdNN-Tree (x{len(ks)} trees)"]
    tpl = artifacts.get("TPL (R*-tree)")
    art.precompute_rows.extend(
        (report.method, report.seconds) for report in reports
    )
    art.precompute_rows.append(("RDT/RDT+/SFT (forward index)", 0.0))

    for k in ks:
        roster = {"MRkNNCoP": cop, "RdNN-Tree": rdnn_engines[k]}
        if tpl is not None and k in include_tpl_for_k:
            roster["TPL"] = tpl
        art.exact_rows[k] = [
            (name, run.mean_recall, run.mean_seconds)
            for name, run in (
                (name, run_engine(engine, queries, truth, k, name=name))
                for name, engine in roster.items()
            )
        ]


def render_figure(art: FigureArtifacts, title: str) -> str:
    """Render one figure's full set of panels as text."""
    blocks = [title]
    for k, curves in sorted(art.curves.items()):
        blocks.append(render_curves(f"\n--- k={k}: time-accuracy tradeoff ---", curves))
        if art.estimator_rows.get(k):
            blocks.append("\n--- estimator-configured RDT+ ---")
            blocks.append(
                format_table(
                    ["method", "t", "recall", "mean_query_s"],
                    art.estimator_rows[k],
                )
            )
        if art.exact_rows.get(k):
            blocks.append("\n--- exact competitors ---")
            blocks.append(
                format_table(["method", "recall", "mean_query_s"], art.exact_rows[k])
            )
    if art.precompute_rows:
        blocks.append("\n--- precomputation time (log-scale bar in the paper) ---")
        blocks.append(format_table(["method", "seconds"], art.precompute_rows))
    return "\n".join(blocks)
