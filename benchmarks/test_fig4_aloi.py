"""Figure 4 — ALOI: recall vs query time for k in {10, 50, 100}.

The high-representational-dimension (641-D), low-intrinsic-dimension
regime: R-tree-family competitors lose their pruning power, while RDT's
dimensional test keeps the search shallow.  TPL is omitted (as the paper
notes, it is not competitive at this dimensionality).
"""

from __future__ import annotations

import pytest

from benchmarks.figure_driver import record, render_figure, run_figure_experiment
from repro.datasets import load_standin

pytestmark = pytest.mark.slow

N = 1000


@pytest.fixture(scope="module")
def fig4():
    data = load_standin("aloi", n=N, seed=0)
    art = run_figure_experiment("fig4_aloi", data, ks=(10, 50, 100))
    record("fig4_aloi", render_figure(art, f"Figure 4 — ALOI stand-in (n={N}, D=641)"))
    return art


def test_fig4_regenerated(fig4):
    # RDT's curve reaches high recall at the top of the t sweep.
    for k, curves in fig4.curves.items():
        rdt_curve = curves[0]
        assert rdt_curve.recalls()[-1] >= 0.95
    for rows in fig4.exact_rows.values():
        assert all(row[1] == 1.0 for row in rows)


def test_benchmark_rdt_plus_query(benchmark, fig4):
    qi = int(fig4.queries[0])
    benchmark(lambda: fig4.rdt_plus.query(query_index=qi, k=10, t=6.0))


def test_benchmark_mrknncop_style_verification(benchmark, fig4):
    """The refinement kNN query — the unit the filter phase tries to avoid."""
    qi = int(fig4.queries[0])
    benchmark(lambda: fig4.index.knn_distance(fig4.data[qi], 10, exclude_index=qi))
