"""Figure 6 — MNIST: recall vs query time for k in {10, 50, 100}.

The highest-intrinsic-dimensionality dataset of the study (Table 1).  The
paper's observations reproduced here: the sequential scan is the right
back-end at D=784, the MLE-configured RDT+ overshoots t (high query times
at ~exact results), and the correlation-dimension estimators give the
better tradeoff.
"""

from __future__ import annotations

import pytest

from benchmarks.figure_driver import record, render_figure, run_figure_experiment
from repro.datasets import load_standin

pytestmark = pytest.mark.slow

N = 1000


@pytest.fixture(scope="module")
def fig6():
    data = load_standin("mnist", n=N, seed=0)
    art = run_figure_experiment("fig6_mnist", data, ks=(10, 50, 100))
    record(
        "fig6_mnist", render_figure(art, f"Figure 6 — MNIST stand-in (n={N}, D=784)")
    )
    return art


def test_fig6_regenerated(fig6):
    for curves in fig6.curves.values():
        assert curves[0].recalls()[-1] >= 0.9
    for rows in fig6.exact_rows.values():
        assert all(row[1] == 1.0 for row in rows)


def test_benchmark_rdt_plus_query(benchmark, fig6):
    qi = int(fig6.queries[0])
    benchmark(lambda: fig6.rdt_plus.query(query_index=qi, k=10, t=6.0))


def test_benchmark_forward_knn_backend(benchmark, fig6):
    """The scan back-end the filter phase drives at D=784."""
    qi = int(fig6.queries[0])
    benchmark(lambda: fig6.index.knn(fig6.data[qi], 100, exclude_index=qi))
