"""Table 1 — intrinsic dimensionality estimates and estimator runtimes.

Paper: per dataset, the MLE / GP / Takens estimates next to the
representational dimension D, with estimator execution times (minutes in
the paper; seconds here — the stand-ins are scaled down, and the GP/Takens
sample is capped, see repro.lid.gp).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.figure_driver import record
from repro.datasets import DATASET_SPECS, load_standin
from repro.evaluation import format_table
from repro.lid import estimate_id_gp, estimate_id_mle, estimate_id_takens

pytestmark = pytest.mark.slow

SIZES = {"sequoia": 4000, "aloi": 2000, "fct": 3000, "mnist": 2000}


@pytest.fixture(scope="module")
def table1():
    rows = []
    datasets = {}
    for name, n in SIZES.items():
        data = load_standin(name, n=n, seed=0)
        datasets[name] = data
        spec = DATASET_SPECS[name]
        started = time.perf_counter()
        mle = estimate_id_mle(data, k=100, seed=0)
        mle_s = time.perf_counter() - started
        started = time.perf_counter()
        gp = estimate_id_gp(data, sample_size=1500, seed=0)
        gp_s = time.perf_counter() - started
        started = time.perf_counter()
        takens = estimate_id_takens(data, sample_size=1500, seed=0)
        takens_s = time.perf_counter() - started
        rows.append(
            (
                name,
                data.shape[1],
                f"{mle:.2f} ({mle_s:.2f}s)",
                f"{gp:.2f} ({gp_s:.2f}s)",
                f"{takens:.2f}",
                f"paper: {spec.paper_id_mle}/{spec.paper_id_gp}/{spec.paper_id_takens}",
            )
        )
    text = format_table(
        ["dataset", "D", "MLE", "GP", "Takens", "paper MLE/GP/Takens"], rows
    )
    record("table1_id_estimates", text)
    return datasets, rows


def test_table1_regenerated(table1):
    """The table exists and the cross-dataset ID ordering holds."""
    _, rows = table1
    by_name = {row[0]: float(row[2].split()[0]) for row in rows}
    assert by_name["sequoia"] < by_name["fct"] < by_name["mnist"]


def test_benchmark_mle(benchmark, table1):
    datasets, _ = table1
    benchmark(lambda: estimate_id_mle(datasets["fct"], k=100, seed=0))


def test_benchmark_gp(benchmark, table1):
    datasets, _ = table1
    benchmark(lambda: estimate_id_gp(datasets["fct"], sample_size=1500, seed=0))


def test_benchmark_takens(benchmark, table1):
    datasets, _ = table1
    benchmark(lambda: estimate_id_takens(datasets["fct"], sample_size=1500, seed=0))
