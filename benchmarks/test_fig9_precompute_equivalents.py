"""Figure 9 — queries answerable within the RdNN-tree's precomputation time.

Paper: for Imagenet100 and Imagenet250 at k=10, how many queries each
method could process during the time the RdNN-tree spends on
precomputation alone.

Scaled-down subtlety: at laptop sizes the O(n^2) kNN self-join runs at
numpy speed, so wall-clock alone understates the gap the paper observed at
n=100k+.  The report therefore shows *both* wall-clock queries-in-budget
and the machine-independent distance-computation ratio (precompute calls /
per-query calls), whose quadratic-vs-sublinear growth is the actual
scalability argument.
"""

from __future__ import annotations


import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro.baselines import MRkNNCoP, RdNN
from repro.core import RDT
from repro.datasets import imagenet_standin
from repro.evaluation import (
    GroundTruth,
    format_table,
    measure_precompute,
    queries_per_budget,
    run_method,
    sample_query_indices,
)
from repro.indexes import LinearScanIndex, RdNNTreeIndex

pytestmark = pytest.mark.slow

SUBSETS = {"imagenet100": 3000, "imagenet250": 7500}
K = 10
N_QUERIES = 5
RDT_T = 6.0


@pytest.fixture(scope="module")
def fig9():
    blocks = [
        "Figure 9 — queries answerable during RdNN-tree precomputation (k=10)"
    ]
    results = {}
    full = imagenet_standin(n=max(SUBSETS.values()), seed=0)
    for name, n in SUBSETS.items():
        data = full[:n]
        truth = GroundTruth(data)
        queries = sample_query_indices(n, N_QUERIES, seed=9)

        report = measure_precompute("RdNN-Tree", lambda: RdNNTreeIndex(data, k=K))
        tree, rdnn_budget = report.artifact, report.seconds
        precompute_calls = float(n) * float(n)  # the kNN self-join

        rdt_plus = RDT(LinearScanIndex(data), variant="rdt+")
        cop = MRkNNCoP(data, k_max=K)
        rdnn = RdNN(tree)

        rows = []
        for method, query_fn in (
            ("RDT+", lambda qi: rdt_plus.query(query_index=qi, k=K, t=RDT_T)),
            ("MRkNNCoP", lambda qi: cop.query(query_index=qi, k=K)),
            ("RdNN-Tree", lambda qi: rdnn.query(query_index=qi)),
        ):
            run = run_method(method, query_fn, queries, truth, K, keep_results=True)
            calls = float(
                np.mean(
                    [
                        r.result.stats.num_distance_calls
                        for r in run.records
                        if r.result is not None
                    ]
                )
            )
            rows.append(
                (
                    method,
                    run.mean_seconds,
                    queries_per_budget(rdnn_budget, run.mean_seconds),
                    precompute_calls / max(1.0, calls),
                    run.mean_recall,
                )
            )
        results[name] = {
            "rows": rows,
            "budget": rdnn_budget,
            "rdt_plus": rdt_plus,
            "queries": queries,
        }
        blocks.append(f"\n[{name} (n={n}), RdNN precompute = {rdnn_budget:.2f}s]")
        blocks.append(
            format_table(
                [
                    "method",
                    "mean_query_s",
                    "queries_in_budget",
                    "queries_per_precompute_calls",
                    "recall",
                ],
                rows,
            )
        )
    record("fig9_precompute_equivalents", "\n".join(blocks))
    return results


def test_fig9_regenerated(fig9):
    small = {r[0]: r for r in fig9["imagenet100"]["rows"]}
    large = {r[0]: r for r in fig9["imagenet250"]["rows"]}
    # RDT+ fits a meaningful number of queries into the precompute window...
    assert large["RDT+"][2] > 5.0
    # ...and the distance-call ratio grows with n: precompute is quadratic,
    # the dimensionally-tested query is not.
    assert large["RDT+"][3] > small["RDT+"][3]
    # Quality does not degrade across subsets.
    assert large["RDT+"][4] >= 0.9


def test_benchmark_rdt_plus_query(benchmark, fig9):
    payload = fig9["imagenet100"]
    qi = int(payload["queries"][0])
    benchmark(lambda: payload["rdt_plus"].query(query_index=qi, k=K, t=RDT_T))
