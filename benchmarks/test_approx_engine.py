"""Approximate RkNN engine — recall/speedup tradeoff benchmark and gate.

The workload approximation exists for: the all-points RkNN batch over a
moderately sized, genuinely high-dimensional dataset (n=8000, d=16,
k=10), answered once exactly (``RDT.query_batch``, the repository's
batched exact engine) and then through both approximate strategies at a
sweep of their knobs (``sample_size`` for the sampled estimator,
``n_tables`` for the LSH filter).  Quality is scored against the
brute-force oracle; time is the end-to-end wall clock of each batched
call (:func:`repro.evaluation.run_approx_tradeoff`).

The acceptance gate asserts that at least one strategy reaches
recall >= 0.95 at a >= 2x speedup over the exact engine (recalibrated
from 3x when the exact baseline gained its SoA/fused-kernel ~2x — see
the note at ``MIN_SPEEDUP``).  Results are
recorded to ``benchmarks/results/approx_engine.{txt,json}`` and the
repo-root trajectory file ``BENCH_approx.json``.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from benchmarks.figure_driver import record
from repro.approx import ApproxRkNN
from repro.core import RDT
from repro.datasets import gaussian_mixture
from repro.evaluation import (
    GroundTruth,
    render_approx_tradeoffs,
    run_approx_tradeoff,
    write_bench_json,
)
from repro.indexes import LinearScanIndex

pytestmark = pytest.mark.slow

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

N = 8000
DIM = 16
K = 10
T_EXACT_ENGINE = 4.0

#: Strategy sweeps: (strategy, knob name, knob values, constructor kwargs).
SWEEPS = [
    ("sampled", "sample_size", (512, 1024, 2048), {"seed": 1}),
    ("lsh", "n_tables", (4, 8), {"seed": 1}),
]

MIN_RECALL = 0.95
#: Recalibrated when the exact baseline gained its SoA/fused-kernel ~2x
#: (see BENCH_kernels.json): the sampled strategy's absolute time is
#: unchanged, but the ratio against the now-faster `RDT.query_batch`
#: compressed from ~4.5x to ~2.8x warm.
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(N, dim=DIM, n_clusters=8, separation=4.0, seed=11)
    index = LinearScanIndex(data)
    truth = GroundTruth(data)
    queries = index.active_ids()
    return index, truth, queries


def test_approx_tradeoff_recorded(workload):
    index, truth, queries = workload
    rdt = RDT(index)
    build_seconds: dict[str, dict[str, float]] = {}

    def factory(strategy, knob, kwargs):
        def for_parameter(value):
            engine = ApproxRkNN(
                index, strategy, **{knob: int(value)}, **kwargs
            )
            # Structure builds (hash tables / sampled kNN tables) are
            # one-time preprocessing, timed separately from the query gate.
            started = time.perf_counter()
            engine.strategy.ensure_current()
            if strategy == "sampled":
                engine.strategy._table(K)
            build_seconds[strategy][str(int(value))] = (
                time.perf_counter() - started
            )
            return lambda qis: engine.query_batch(query_indices=qis, k=K)

        return for_parameter

    tradeoffs = []
    exact_seconds = None
    for strategy, knob, values, kwargs in SWEEPS:
        build_seconds[strategy] = {}
        tradeoff = run_approx_tradeoff(
            strategy,
            factory(strategy, knob, kwargs),
            values,
            queries,
            truth,
            K,
            # The exact engine is timed once, on the first sweep, and the
            # measured baseline is shared by every other strategy.
            **(
                {
                    "exact_batch_fn": lambda qis: rdt.query_batch(
                        query_indices=qis, k=K, t=T_EXACT_ENGINE
                    )
                }
                if exact_seconds is None
                else {"exact_seconds": exact_seconds}
            ),
        )
        exact_seconds = tradeoff.exact_seconds
        tradeoffs.append(tradeoff)

    text = render_approx_tradeoffs(
        f"Approximate RkNN engine — all-points workload "
        f"(n={N}, d={DIM}, k={K}, exact t={T_EXACT_ENGINE})",
        tradeoffs,
    )

    gated = {
        tradeoff.method: tradeoff.best_gated(MIN_RECALL)
        for tradeoff in tradeoffs
    }
    winners = {
        name: run
        for name, run in gated.items()
        if run is not None and run.speedup >= MIN_SPEEDUP
    }
    payload = {
        "schema_version": 1,
        "workload": {"n": N, "dim": DIM, "k": K, "queries": int(len(queries))},
        "exact_seconds": exact_seconds,
        "strategies": {
            tradeoff.method: {
                "knob": knob,
                "build_seconds": build_seconds[tradeoff.method],
                "runs": [
                    {
                        "parameter": run.parameter,
                        "recall": run.recall,
                        "precision": run.precision,
                        "seconds": run.seconds,
                        "speedup": run.speedup,
                    }
                    for run in tradeoff.runs
                ],
            }
            for tradeoff, (_, knob, _, _) in zip(tradeoffs, SWEEPS)
        },
        "gate": {
            "min_recall": MIN_RECALL,
            "min_speedup": MIN_SPEEDUP,
            "passed_by": sorted(winners),
            "best": {
                name: {"recall": run.recall, "speedup": run.speedup}
                for name, run in winners.items()
            },
        },
    }
    record("approx_engine", text, data=payload)
    write_bench_json(
        REPO_ROOT / "BENCH_approx.json",
        {"benchmark": "approx_engine", **payload},
    )

    # The acceptance gate: at least one strategy must deliver the recall
    # floor at the required batched-query speedup.
    assert winners, (
        f"no strategy reached recall >= {MIN_RECALL} at a "
        f">= {MIN_SPEEDUP}x speedup; best gated runs: "
        + ", ".join(
            f"{name}: "
            + (
                f"recall {run.recall:.3f} at {run.speedup:.2f}x"
                if run is not None
                else "recall floor not met"
            )
            for name, run in sorted(gated.items())
        )
    )


def test_sampled_strategy_recall_floor_is_exact(workload):
    """On top of the statistical gate, the sampled strategy's recall is a
    design guarantee — spot-check it at the smallest (loosest) sample."""
    index, truth, _ = workload
    engine = ApproxRkNN(index, "sampled", sample_size=256, seed=3)
    queries = list(range(0, N, 500))
    results = engine.query_batch(query_indices=queries, k=K)
    for qi, result in zip(queries, results):
        expected = set(truth.answer(qi, K).tolist())
        assert expected <= set(result.ids.tolist())
