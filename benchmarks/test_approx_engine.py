"""Approximate RkNN engine — recall/speedup tradeoff benchmark and gate.

The workload approximation exists for: the all-points RkNN batch over a
moderately sized, genuinely high-dimensional dataset (n=8000, d=16,
k=10), answered once exactly (``RDT.query_batch``, the repository's
batched exact engine) and then through the approximate strategies at a
sweep of their knobs (``sample_size`` for the sampled estimator,
``n_tables`` for the LSH filter, ``ef`` for the navigable graph).
Quality is scored against the brute-force oracle; time is the
end-to-end wall clock of each batched call
(:func:`repro.evaluation.run_approx_tradeoff`).

The acceptance gate asserts that at least one strategy reaches
recall >= 0.95 at a >= 2x speedup over the exact engine (recalibrated
from 3x when the exact baseline gained its SoA/fused-kernel ~2x — see
the note at ``MIN_SPEEDUP``).

A second, ``highdim``-marked leg runs the regime the graph strategy was
built for — d in {64, 128}, where tree pruning collapses and the exact
engine degrades to a brute scan per query.  All three strategies answer
the same self-join and the gate asserts the graph strategy holds
recall >= 0.9 at >= 3x the query speed of the best non-graph strategy
at d=64.  The exact baseline at high d is timed on a query subset and
extrapolated linearly (recorded as such in the payload).

Results are recorded to ``benchmarks/results/approx_engine*.{txt,json}``
and merged into the repo-root trajectory file ``BENCH_approx.json``
(the base sweep under the top-level keys, the high-d leg under
``high_dim.<d>`` — each test preserves the other's section).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from benchmarks.figure_driver import record
from repro.approx import ApproxRkNN
from repro.core import RDT
from repro.datasets import gaussian_mixture
from repro.evaluation import (
    GroundTruth,
    render_approx_tradeoffs,
    run_approx_tradeoff,
    write_bench_json,
)
from repro.evaluation.metrics import precision, recall
from repro.indexes import LinearScanIndex

pytestmark = pytest.mark.slow

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_approx.json"

N = 8000
DIM = 16
K = 10
T_EXACT_ENGINE = 4.0

#: Strategy sweeps: (strategy, knob name, knob values, constructor kwargs).
SWEEPS = [
    ("sampled", "sample_size", (512, 1024, 2048), {"seed": 1}),
    ("lsh", "n_tables", (4, 8), {"seed": 1}),
    ("graph", "ef", (32, 64), {"seed": 1, "graph_m": 16}),
]


def _merge_bench_file(update: dict) -> None:
    """Update top-level keys of ``BENCH_approx.json``, preserving the rest.

    The base sweep and the high-d leg write disjoint sections of one
    trajectory file; whichever runs must not clobber the other's rows.
    """
    existing: dict = {}
    if BENCH_PATH.exists():
        existing = json.loads(BENCH_PATH.read_text())
    existing.update(update)
    write_bench_json(BENCH_PATH, existing)

MIN_RECALL = 0.95
#: Recalibrated when the exact baseline gained its SoA/fused-kernel ~2x
#: (see BENCH_kernels.json): the sampled strategy's absolute time is
#: unchanged, but the ratio against the now-faster `RDT.query_batch`
#: compressed from ~4.5x to ~2.8x warm.
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(N, dim=DIM, n_clusters=8, separation=4.0, seed=11)
    index = LinearScanIndex(data)
    truth = GroundTruth(data)
    queries = index.active_ids()
    return index, truth, queries


def test_approx_tradeoff_recorded(workload):
    index, truth, queries = workload
    rdt = RDT(index)
    build_seconds: dict[str, dict[str, float]] = {}

    def factory(strategy, knob, kwargs):
        def for_parameter(value):
            engine = ApproxRkNN(
                index, strategy, **{knob: int(value)}, **kwargs
            )
            # Structure builds (hash tables / sampled kNN tables) are
            # one-time preprocessing, timed separately from the query gate.
            started = time.perf_counter()
            engine.strategy.ensure_current()
            if strategy == "sampled":
                engine.strategy._table(K)
            build_seconds[strategy][str(int(value))] = (
                time.perf_counter() - started
            )
            return lambda qis: engine.query_batch(query_indices=qis, k=K)

        return for_parameter

    tradeoffs = []
    exact_seconds = None
    for strategy, knob, values, kwargs in SWEEPS:
        build_seconds[strategy] = {}
        tradeoff = run_approx_tradeoff(
            strategy,
            factory(strategy, knob, kwargs),
            values,
            queries,
            truth,
            K,
            # The exact engine is timed once, on the first sweep, and the
            # measured baseline is shared by every other strategy.
            **(
                {
                    "exact_batch_fn": lambda qis: rdt.query_batch(
                        query_indices=qis, k=K, t=T_EXACT_ENGINE
                    )
                }
                if exact_seconds is None
                else {"exact_seconds": exact_seconds}
            ),
        )
        exact_seconds = tradeoff.exact_seconds
        tradeoffs.append(tradeoff)

    text = render_approx_tradeoffs(
        f"Approximate RkNN engine — all-points workload "
        f"(n={N}, d={DIM}, k={K}, exact t={T_EXACT_ENGINE})",
        tradeoffs,
    )

    gated = {
        tradeoff.method: tradeoff.best_gated(MIN_RECALL)
        for tradeoff in tradeoffs
    }
    winners = {
        name: run
        for name, run in gated.items()
        if run is not None and run.speedup >= MIN_SPEEDUP
    }
    payload = {
        "schema_version": 1,
        "workload": {"n": N, "dim": DIM, "k": K, "queries": int(len(queries))},
        "exact_seconds": exact_seconds,
        "strategies": {
            tradeoff.method: {
                "knob": knob,
                "build_seconds": build_seconds[tradeoff.method],
                "runs": [
                    {
                        "parameter": run.parameter,
                        "recall": run.recall,
                        "precision": run.precision,
                        "seconds": run.seconds,
                        "speedup": run.speedup,
                    }
                    for run in tradeoff.runs
                ],
            }
            for tradeoff, (_, knob, _, _) in zip(tradeoffs, SWEEPS)
        },
        "gate": {
            "min_recall": MIN_RECALL,
            "min_speedup": MIN_SPEEDUP,
            "passed_by": sorted(winners),
            "best": {
                name: {"recall": run.recall, "speedup": run.speedup}
                for name, run in winners.items()
            },
        },
    }
    record("approx_engine", text, data=payload)
    _merge_bench_file({"benchmark": "approx_engine", **payload})

    # The acceptance gate: at least one strategy must deliver the recall
    # floor at the required batched-query speedup.
    assert winners, (
        f"no strategy reached recall >= {MIN_RECALL} at a "
        f">= {MIN_SPEEDUP}x speedup; best gated runs: "
        + ", ".join(
            f"{name}: "
            + (
                f"recall {run.recall:.3f} at {run.speedup:.2f}x"
                if run is not None
                else "recall floor not met"
            )
            for name, run in sorted(gated.items())
        )
    )


# ----------------------------------------------------------------------
# High-dimensional leg (the graph strategy's home regime)
# ----------------------------------------------------------------------

HIGH_DIMS = (64, 128)
#: Exact-baseline queries actually timed at high d (the rest is linear
#: extrapolation — at these dimensions the exact engine is a brute scan
#: per query, so per-query cost is constant across the workload).
EXACT_SUBSET = 400
HIGH_MIN_RECALL = 0.9
#: Gate: graph query time vs the best non-graph strategy at d=64.
HIGH_MIN_SPEEDUP_VS_BEST = 3.0

#: One fixed setting per strategy (the knee of each d=16 sweep).
HIGH_SETTINGS = {
    "graph": {"ef": 64, "graph_m": 16, "seed": 1},
    "sampled": {"sample_size": 1024, "seed": 1},
    "lsh": {"n_tables": 8, "seed": 1},
}


@pytest.mark.highdim
@pytest.mark.parametrize("dim", HIGH_DIMS)
def test_high_dim_strategies_recorded(dim):
    data = gaussian_mixture(N, dim=dim, n_clusters=8, separation=4.0, seed=11)
    index = LinearScanIndex(data)
    truth = GroundTruth(data)
    queries = index.active_ids()
    answers = truth.answers(queries, K)

    # Exact baseline on a subset, extrapolated (see EXACT_SUBSET note).
    rdt = RDT(index)
    subset = queries[:EXACT_SUBSET]
    started = time.perf_counter()
    rdt.query_batch(query_indices=subset, k=K, t=T_EXACT_ENGINE)
    exact_seconds = (time.perf_counter() - started) * (
        len(queries) / len(subset)
    )

    rows = {}
    for strategy, kwargs in HIGH_SETTINGS.items():
        engine = ApproxRkNN(index, strategy, **kwargs)
        started = time.perf_counter()
        engine.strategy.ensure_current()
        if strategy == "sampled":
            engine.strategy._table(K)
        build = time.perf_counter() - started
        started = time.perf_counter()
        results = engine.query_batch(query_indices=queries, k=K)
        seconds = time.perf_counter() - started
        recalls, precisions = [], []
        for qi, result in zip(queries, results):
            expected = answers[int(qi)]
            recalls.append(recall(expected, result.ids))
            precisions.append(precision(expected, result.ids))
        rows[strategy] = {
            "settings": kwargs,
            "build_seconds": build,
            "seconds": seconds,
            "recall": float(sum(recalls) / len(recalls)),
            "precision": float(sum(precisions) / len(precisions)),
            "speedup_vs_exact": exact_seconds / seconds,
        }

    best_other = min(
        rows[name]["seconds"] for name in rows if name != "graph"
    )
    graph = rows["graph"]
    payload = {
        "schema_version": 1,
        "workload": {"n": N, "dim": dim, "k": K, "queries": int(len(queries))},
        "exact_seconds_extrapolated": exact_seconds,
        "exact_subset": EXACT_SUBSET,
        "strategies": rows,
        "gate": {
            "min_recall": HIGH_MIN_RECALL,
            "min_speedup_vs_best_other": HIGH_MIN_SPEEDUP_VS_BEST,
            "graph_speedup_vs_best_other": best_other / graph["seconds"],
        },
    }
    text = "\n".join(
        f"{name:>8}: build {row['build_seconds']:.2f}s  "
        f"query {row['seconds']:.2f}s  recall {row['recall']:.4f}  "
        f"precision {row['precision']:.4f}  "
        f"{row['speedup_vs_exact']:.1f}x vs exact"
        for name, row in rows.items()
    )
    record(f"approx_engine_d{dim}", text, data=payload)

    existing = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    high = dict(existing.get("high_dim", {}))
    high[str(dim)] = payload
    _merge_bench_file({"high_dim": high})

    # The high-d gate (asserted at d=64; d=128 is recorded trajectory):
    # the graph strategy must hold the recall floor at a decisive query
    # speedup over the best non-graph strategy.
    assert graph["precision"] == 1.0
    if dim == 64:
        assert graph["recall"] >= HIGH_MIN_RECALL, graph
        assert graph["seconds"] * HIGH_MIN_SPEEDUP_VS_BEST <= best_other, (
            graph,
            best_other,
        )


def test_sampled_strategy_recall_floor_is_exact(workload):
    """On top of the statistical gate, the sampled strategy's recall is a
    design guarantee — spot-check it at the smallest (loosest) sample."""
    index, truth, _ = workload
    engine = ApproxRkNN(index, "sampled", sample_size=256, seed=3)
    queries = list(range(0, N, 500))
    results = engine.query_batch(query_indices=queries, k=K)
    for qi, result in zip(queries, results):
        expected = set(truth.answer(qi, K).tolist())
        assert expected <= set(result.ids.tolist())
