"""Multi-core scaling benchmark — ``query_all`` throughput by worker count.

One member-query block per worker count (workers 1/2/4/8) dispatched
through :class:`repro.parallel.ParallelExecutor`'s block fan-out — the
exact path ``query_all`` takes — over the shared-memory point matrix,
at n=1e5 and n=1e6 (kd-tree + rdt+).  Throughput is recorded as
queries/second plus the extrapolated full ``query_all`` wall time
(``n / qps``); the sweep uses a fixed m-query block per size so it stays
tractable on a shared 1-core runner.  Every parallel answer is asserted
bit-identical to the in-process Service, and a sharded leg asserts
``ShardedService.query_all`` ids bit-match the single-process Service.

Gate (same warn/hard-floor idiom as ``test_kernels.py``): best-of-3
speedup at 4 workers vs 1 on the n=1e5 workload must clear the 1.5x
hard floor, with a warning under the 2.5x target.  The gate skips with a
logged reason when ``os.cpu_count() < 4`` (speedup is not measurable)
or POSIX shared memory is unavailable; the throughput rows are still
recorded to the repo-root ``BENCH_scaling.json`` trajectory file.
"""

from __future__ import annotations

import os
import pathlib
import time
import warnings

import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro import kernels
from repro.evaluation import write_bench_json
from repro.parallel import (
    ParallelExecutor,
    ShardedService,
    resolve_start_method,
    shared_memory_available,
)
from repro.service import QuerySpec, Service

pytestmark = pytest.mark.slow

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_scaling.json"

DIM = 8
K = 10
T = 4.0
WORKERS = (1, 2, 4, 8)
REPS = 3

#: Per-size query-block shape.  The block is dispatched through the same
#: fan-out ``query_all`` uses, so q/s extrapolates to full ``query_all``
#: wall time; the n=1e6 leg keeps one rep so the whole sweep stays
#: bounded on a 1-core runner (it is recorded, never gated).
SIZES = (
    {"n": 100_000, "m": 64, "reps": REPS},
    {"n": 1_000_000, "m": 16, "reps": 1},
)

#: Gate tiers on the n=1e5 leg at 4 workers vs 1 (applied only when the
#: machine can actually show a speedup, i.e. ``os.cpu_count() >= 4``).
SPEEDUP_TARGET = 2.5
SPEEDUP_FLOOR = 1.5

#: Sharded bit-match leg: small enough for an exact full ``query_all``
#: in the exhaustive regime (t=1e30 queries cost ~n^2 work apiece).
SHARDED_N = 500
SHARDED_SHARDS = 4


def _measure(executor, query_ids, reps):
    """Best-of-``reps`` wall time for one member-query block."""
    best, ids = np.inf, None
    for _ in range(reps):
        start = time.perf_counter()
        _, results = executor.query_batch_versioned(query_indices=query_ids)
        best = min(best, time.perf_counter() - start)
        ids = [result.ids for result in results]
    return best, ids


def test_parallel_scaling_recorded():
    if not shared_memory_available():
        pytest.skip("POSIX shared memory is unavailable on this runner")
    cpu = os.cpu_count() or 1
    rng = np.random.default_rng(42)
    rows = []
    gate_speedup = None
    lines = [
        f"Multi-core scaling — member-query blocks through "
        f"ParallelExecutor (d={DIM}, k={K}, t={T}, kd-tree + rdt+, "
        f"start_method={resolve_start_method()}, cpu_count={cpu}, "
        f"backend={kernels.active_backend()})",
        f"{'n':>9s} {'workers':>7s} {'reps':>4s} {'seconds':>9s} "
        f"{'q/s':>8s} {'speedup':>8s} {'query_all (est s)':>18s}",
    ]

    for size in SIZES:
        n, m, reps = size["n"], size["m"], size["reps"]
        points = rng.normal(size=(n, DIM))
        service = Service(
            points, backend="kd", engine="rdt+", defaults=QuerySpec(k=K, t=T)
        )
        query_ids = rng.choice(n, size=m, replace=False)
        _, expected = service.query_batch_versioned(query_indices=query_ids)
        base = None
        for workers in WORKERS:
            with ParallelExecutor(service, workers=workers) as executor:
                # warm-up dispatch: worker attach + layout adoption
                executor.query_batch_versioned(query_indices=query_ids[:4])
                seconds, ids = _measure(executor, query_ids, reps)
            for want, got in zip(expected, ids):
                np.testing.assert_array_equal(want.ids, got)
            if workers == 1:
                base = seconds
            speedup = base / seconds
            qps = m / seconds
            rows.append(
                {
                    "n": n,
                    "m": m,
                    "reps": reps,
                    "workers": workers,
                    "seconds": seconds,
                    "queries_per_second": qps,
                    "speedup_vs_one_worker": speedup,
                    "extrapolated_query_all_seconds": n / qps,
                }
            )
            lines.append(
                f"{n:9d} {workers:7d} {reps:4d} {seconds:9.3f} "
                f"{qps:8.1f} {speedup:7.2f}x {n / qps:18.0f}"
            )
            if n == 100_000 and workers == 4:
                gate_speedup = speedup
        del service, points

    # --- sharded answers bit-match the single-process Service ----------
    sub = rng.normal(size=(SHARDED_N, DIM))
    spec = QuerySpec(k=K, t=1e30)
    reference = Service(
        sub, backend="kd", engine="rdt", defaults=spec
    ).query_all()
    with ShardedService(
        sub, "rdt", shards=SHARDED_SHARDS, workers=2, defaults=spec
    ) as sharded:
        _, sharded_results = sharded.query_all_versioned()
    assert set(reference) == set(sharded_results)
    for qid in reference:
        np.testing.assert_array_equal(
            reference[qid].ids, sharded_results[qid].ids
        )
    lines.append(
        f"sharded query_all (n={SHARDED_N}, shards={SHARDED_SHARDS}, rdt "
        f"exact): ids bit-match the single-process Service"
    )

    gate_applies = cpu >= 4
    if gate_applies:
        gate_reason = f"applied (cpu_count={cpu})"
    else:
        gate_reason = (
            f"skipped: os.cpu_count()={cpu} < 4 — a speedup cannot "
            "materialize without spare cores; throughput rows recorded"
        )
    lines.append(
        f"gate (n=1e5, 4 workers vs 1, target {SPEEDUP_TARGET}x, floor "
        f"{SPEEDUP_FLOOR}x): {gate_reason}"
        + (f", measured {gate_speedup:.2f}x" if gate_speedup else "")
    )

    payload = {
        "benchmark": "scaling",
        "dim": DIM,
        "k": K,
        "t": T,
        "backend": "kd-tree",
        "engine": "rdt+",
        "workers": list(WORKERS),
        "cpu_count": cpu,
        "start_method": resolve_start_method(),
        "kernel_backend": kernels.active_backend(),
        "rows": rows,
        "parallel_ids_bit_match": True,
        "sharded_ids_bit_match": True,
        "sharded": {"n": SHARDED_N, "shards": SHARDED_SHARDS, "engine": "rdt"},
        "gate": {
            "target": SPEEDUP_TARGET,
            "floor": SPEEDUP_FLOOR,
            "applied": gate_applies,
            "reason": gate_reason,
            "speedup_at_4_workers": gate_speedup,
        },
    }
    record("scaling", "\n".join(lines), data=payload)
    write_bench_json(BENCH_PATH, payload)

    if not gate_applies:
        warnings.warn(
            f"scaling speedup gate {gate_reason}", stacklevel=2
        )
        return
    assert gate_speedup is not None
    assert gate_speedup > SPEEDUP_FLOOR, (
        f"4-worker scaling decisively below the floor "
        f"({gate_speedup:.2f}x < {SPEEDUP_FLOOR}x)"
    )
    if gate_speedup < SPEEDUP_TARGET:
        warnings.warn(
            f"4-worker scaling landed under the {SPEEDUP_TARGET}x target "
            f"this run ({gate_speedup:.2f}x) — expected on a loaded "
            "machine, investigate if it persists",
            stacklevel=2,
        )
