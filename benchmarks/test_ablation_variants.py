"""Ablation B — RDT vs RDT+ candidate-set reduction (Section 4.3).

Measures what the exclusion rule actually buys: smaller stored filter sets
(hence cheaper witness maintenance) at a quantified precision cost, on the
high-dimensional MNIST stand-in where the paper says the reduction matters
most.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro.core import RDT
from repro.datasets import load_standin
from repro.evaluation import GroundTruth, format_table, run_method, sample_query_indices
from repro.indexes import LinearScanIndex

pytestmark = pytest.mark.slow

N = 1000
K = 10
T_SWEEP = (4.0, 8.0, 12.0)


@pytest.fixture(scope="module")
def ablation():
    data = load_standin("mnist", n=N, seed=0)
    truth = GroundTruth(data)
    queries = sample_query_indices(N, 8, seed=11)
    index = LinearScanIndex(data)
    variants = {"RDT": RDT(index), "RDT+": RDT(index, variant="rdt+")}

    rows = []
    stats = {}
    for t in T_SWEEP:
        for label, method in variants.items():
            run = run_method(
                label,
                lambda qi: method.query(query_index=qi, k=K, t=t),
                queries,
                truth,
                K,
                keep_results=True,
            )
            stored = float(
                np.mean([r.result.stats.num_candidates for r in run.records])
            )
            excluded = float(
                np.mean([r.result.stats.num_excluded for r in run.records])
            )
            rows.append(
                (
                    t,
                    label,
                    run.mean_recall,
                    run.mean_precision,
                    stored,
                    excluded,
                    run.mean_seconds,
                )
            )
            stats[(t, label)] = {
                "stored": stored,
                "recall": run.mean_recall,
                "precision": run.mean_precision,
                "seconds": run.mean_seconds,
            }
    text = format_table(
        ["t", "variant", "recall", "precision", "stored |F|", "excluded", "mean_s"],
        rows,
    )
    record("ablation_variants", "Ablation B — RDT vs RDT+ (MNIST stand-in)\n" + text)
    return stats


def test_reduction_shrinks_filter_set(ablation):
    for t in T_SWEEP:
        assert ablation[(t, "RDT+")]["stored"] < ablation[(t, "RDT")]["stored"]


def test_reduction_keeps_recall(ablation):
    for t in T_SWEEP:
        assert ablation[(t, "RDT+")]["recall"] >= ablation[(t, "RDT")]["recall"] - 0.05


def test_rdt_precision_is_exact(ablation):
    for t in T_SWEEP:
        assert ablation[(t, "RDT")]["precision"] == 1.0


def test_benchmark_rdt(benchmark, ablation):
    data = load_standin("mnist", n=N, seed=0)
    rdt = RDT(LinearScanIndex(data))
    benchmark(lambda: rdt.query(query_index=0, k=K, t=8.0))


def test_benchmark_rdt_plus(benchmark, ablation):
    data = load_standin("mnist", n=N, seed=0)
    rdt_plus = RDT(LinearScanIndex(data), variant="rdt+")
    benchmark(lambda: rdt_plus.query(query_index=0, k=K, t=8.0))
