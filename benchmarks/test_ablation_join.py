"""Ablation E — the RkNN self-join (the paper's §1 mining workload).

Compares the three ways to compute every point's reverse neighborhood:
the O(n^2) brute-force table, and the RDT / RDT+ joins whose per-query
dimensional tests keep each search local.  At laptop n the vectorized
table wins outright — and the distance-call column shows why the paper
needs RDT+ rather than RDT for this workload: plain RDT's witness
maintenance is quadratic in the per-query candidate count, which a
self-join multiplies by n, while the RDT+ exclusion rule removes most of
that cost (the report typically shows an order of magnitude between the
two).  The join's real habitat is the dynamic setting (recompute only the
neighborhoods an update touched) and dataset sizes where n^2 distance
computations stop being an option.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro.baselines import NaiveRkNN
from repro.datasets import load_standin
from repro.evaluation import format_table
from repro.evaluation.metrics import precision as precision_of
from repro.evaluation.metrics import recall as recall_of
from repro.indexes import LinearScanIndex
from repro.mining import rknn_self_join

pytestmark = pytest.mark.slow

N = 800
K = 10
T = 6.0


@pytest.fixture(scope="module")
def ablation():
    data = load_standin("fct", n=N, seed=0)
    index = LinearScanIndex(data)

    started = time.perf_counter()
    naive = NaiveRkNN(data, k=K)
    exact = {qi: set(naive.query_ids(query_index=qi).tolist()) for qi in range(N)}
    naive_seconds = time.perf_counter() - started

    rows = [("brute-force table", naive_seconds, float(N) * N, 1.0, 1.0)]
    joins = {}
    for variant in ("rdt", "rdt+"):
        index.metric.reset_counter()
        started = time.perf_counter()
        join = rknn_self_join(index, k=K, t=T, variant=variant)
        seconds = time.perf_counter() - started
        joins[variant] = join
        recalls, precisions = [], []
        for qi in range(N):
            got = join.neighborhoods[qi]
            recalls.append(recall_of(exact[qi], got))
            precisions.append(precision_of(exact[qi], got))
        rows.append(
            (
                f"{variant} join (t={T})",
                seconds,
                float(join.totals.num_distance_calls),
                float(np.mean(recalls)),
                float(np.mean(precisions)),
            )
        )
    text = format_table(
        ["method", "seconds", "distance_calls", "recall", "precision"], rows
    )
    record("ablation_join", f"Ablation E — RkNN self-join (FCT, n={N}, k={K})\n" + text)
    return rows, joins


def test_join_quality(ablation):
    rows, _ = ablation
    by_name = {row[0]: row for row in rows}
    rdt_row = by_name[f"rdt join (t={T})"]
    assert rdt_row[3] >= 0.97  # recall
    assert rdt_row[4] == 1.0  # plain RDT precision is exact
    plus_row = by_name[f"rdt+ join (t={T})"]
    assert plus_row[3] >= 0.97
    assert plus_row[4] >= 0.95  # documented precision risk, bounded


def test_benchmark_rdt_plus_join(benchmark, ablation):
    data = load_standin("fct", n=200, seed=1)
    index = LinearScanIndex(data)
    benchmark(lambda: rknn_self_join(index, k=K, t=T, variant="rdt+"))
