"""Serving benchmark — coalesced dispatch vs per-query dispatch under load.

The serving layer's claim is throughput under *concurrent* load: many
caller threads, an open-loop arrival process, and (optionally) writer
churn publishing new epochs while queries are in flight.  This module
drives one :class:`repro.Service` through the
:func:`repro.serving.run_open_loop` generator in three dispatch modes —

* ``naive``     — every caller thread issues ``Service.query`` itself;
* ``coalesced`` — callers go through a :class:`repro.serving.QueryCoalescer`,
  so concurrent arrivals are answered by shared ``query_batch`` passes;
* ``coalesced+cache`` — the same, with an epoch-keyed
  :class:`repro.serving.ResultCache` in front (the query pool is finite,
  so at write rate 0 most arrivals are repeats; churn invalidates)

— at two write rates (0 and a steady insert stream), offering more load
than the naive path can absorb so the achieved-qps gap is the measured
quantity.  Results go to ``benchmarks/results/serving.txt`` (+ ``.json``
twin) and the repo-root ``BENCH_serving.json`` trajectory file.
"""

from __future__ import annotations

import pathlib
import warnings

import numpy as np
import pytest

import repro
from benchmarks.figure_driver import record
from repro.evaluation import write_bench_json
from repro.serving import QueryCoalescer, ResultCache, run_open_loop

pytestmark = pytest.mark.slow

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_serving.json"

N = 3000
DIM = 8
K = 10
T = 4.0
N_QUERIES = 32
N_WORKERS = 8
#: Offered load is ~4x what naive per-query dispatch sustains on this
#: workload, so achieved qps measures saturation throughput.  Open-loop
#: arrivals all complete (late, not dropped), so total arrivals
#: (OFFERED_QPS x DURATION_S) bounds the suite's wall-clock: ~300
#: arrivals keep the slowest (naive) run near ten seconds.
OFFERED_QPS = 150.0
DURATION_S = 2.0
WRITE_RATES = (0.0, 25.0)

#: Hard floor for the coalesced-over-naive achieved-qps ratio: below
#: 1.0x we warn (wall-clock gate on a shared runner — see the comment in
#: test_batch_backends.py); a decisive loss below this fails.
SPEEDUP_FLOOR = 0.5


def _fresh_service(data):
    return repro.Service(
        data, backend="kd", engine="rdt+",
        defaults=repro.QuerySpec(k=K, t=T),
    )


def _run_mode(mode, data, queries, write_rate):
    """One open-loop run; a fresh Service per run so churn cannot leak."""
    service = _fresh_service(data)
    rng = np.random.default_rng(99)
    writer = (lambda: service.insert(rng.normal(size=DIM)))
    kwargs = dict(
        offered_qps=OFFERED_QPS,
        duration_s=DURATION_S,
        n_workers=N_WORKERS,
        writer=writer if write_rate else None,
        write_rate=write_rate,
    )
    if mode == "naive":
        return run_open_loop(service.query, queries, **kwargs), None
    cache = ResultCache() if mode == "coalesced+cache" else None
    with QueryCoalescer(service, max_wait=0.002, max_batch=64,
                        cache=cache) as coalescer:
        report = run_open_loop(coalescer.query, queries, **kwargs)
        return report, coalescer.stats()


def test_serving_throughput_recorded():
    rng = np.random.default_rng(13)
    data = rng.normal(size=(N, DIM))
    queries = data[rng.choice(N, size=N_QUERIES, replace=False)] + 0.01

    modes = ("naive", "coalesced", "coalesced+cache")
    results: dict[str, dict[str, dict]] = {mode: {} for mode in modes}
    dispatch_stats: dict[str, dict[str, dict]] = {}
    for write_rate in WRITE_RATES:
        for mode in modes:
            report, stats = _run_mode(mode, data, queries, write_rate)
            results[mode][str(write_rate)] = report
            if stats is not None:
                dispatch_stats.setdefault(mode, {})[str(write_rate)] = stats

    speedups = {
        str(rate): (
            results["coalesced"][str(rate)]["achieved_qps"]
            / results["naive"][str(rate)]["achieved_qps"]
        )
        for rate in WRITE_RATES
    }

    lines = [
        f"Concurrent serving — open-loop load (n={N}, d={DIM}, k={K}, t={T}, "
        f"{N_WORKERS} workers, offered {OFFERED_QPS:.0f} q/s for "
        f"{DURATION_S:.0f}s)",
        f"{'mode':16s} {'writes/s':>8s} {'achieved':>10s} {'p50':>8s} "
        f"{'p99':>8s} {'errors':>7s}",
    ]
    for mode in modes:
        for rate in WRITE_RATES:
            report = results[mode][str(rate)]
            lines.append(
                f"{mode:16s} {rate:8.0f} "
                f"{report['achieved_qps']:8.0f}/s "
                f"{report['latency_ms']['p50']:6.1f}ms "
                f"{report['latency_ms']['p99']:6.1f}ms "
                f"{report['errors']:7d}"
            )
    for rate in WRITE_RATES:
        lines.append(
            f"coalesced vs naive @ {rate:.0f} writes/s: "
            f"{speedups[str(rate)]:.2f}x achieved qps"
        )

    payload = {
        "benchmark": "serving",
        "n": N,
        "dim": DIM,
        "k": K,
        "t": T,
        "engine": "rdt+",
        "backend": "kd-tree",
        "offered_qps": OFFERED_QPS,
        "duration_s": DURATION_S,
        "n_workers": N_WORKERS,
        "write_rates": list(WRITE_RATES),
        "modes": results,
        "dispatch_stats": dispatch_stats,
        "coalesced_over_naive_qps": speedups,
    }
    record("serving", "\n".join(lines), data=payload)
    write_bench_json(BENCH_PATH, payload)

    for rate in WRITE_RATES:
        for mode in modes:
            report = results[mode][str(rate)]
            assert report["completed"] > 0, (mode, rate)
            assert report["errors"] == 0, (mode, rate)
        # Wall-clock gate (shared runners): warn when coalescing does not
        # win this run, fail only on a decisive loss a real regression
        # would produce anywhere.
        assert speedups[str(rate)] > SPEEDUP_FLOOR, (
            f"coalesced dispatch decisively slower than per-query dispatch "
            f"at {rate} writes/s ({speedups[str(rate)]:.2f}x < "
            f"{SPEEDUP_FLOOR}x)"
        )
        if speedups[str(rate)] <= 1.0:
            warnings.warn(
                f"coalesced dispatch did not beat per-query dispatch at "
                f"{rate} writes/s this run ({speedups[str(rate)]:.2f}x) — "
                "expected on a loaded machine, investigate if it persists",
                stacklevel=2,
            )


def test_churn_runs_publish_new_epochs():
    """The write-rate runs must actually exercise MVCC: a fresh service
    driven like the benchmark's churn mode ends at a later epoch."""
    rng = np.random.default_rng(7)
    data = rng.normal(size=(500, DIM))
    service = _fresh_service(data)
    queries = data[:8] + 0.01
    report = run_open_loop(
        service.query,
        queries,
        offered_qps=200.0,
        duration_s=0.3,
        n_workers=4,
        writer=lambda: service.insert(rng.normal(size=DIM)),
        write_rate=30.0,
    )
    assert report["writes"] > 0
    assert service.epoch == report["writes"]
    assert report["errors"] == 0
