"""Ablation C — the incremental-NN back-end (Section 7.1's index choice).

The paper found the cover tree superior to sequential scan everywhere
except MNIST/Imagenet (high representational dimension).  This ablation
runs identical RDT+ queries over four back-ends on a low-D and a high-D
stand-in, checking both agreement of the answers (the algorithm is
back-end-agnostic) and the expected cost crossover.
"""

from __future__ import annotations

import pytest

from benchmarks.figure_driver import record
from repro.core import RDT
from repro.datasets import load_standin
from repro.evaluation import GroundTruth, format_table, run_method, sample_query_indices
from repro.indexes import build_index

pytestmark = pytest.mark.slow

BACKENDS = ("linear-scan", "cover-tree", "kd-tree", "vp-tree")
DATASETS = {"sequoia": 2500, "mnist": 1200}
K = 10
T = 6.0


@pytest.fixture(scope="module")
def ablation():
    blocks = ["Ablation C — RDT+ across incremental-NN back-ends"]
    results = {}
    for name, n in DATASETS.items():
        data = load_standin(name, n=n, seed=0)
        truth = GroundTruth(data)
        queries = sample_query_indices(n, 6, seed=12)
        rows = []
        for backend in BACKENDS:
            index = build_index(backend, data)
            rdt_plus = RDT(index, variant="rdt+")
            run = run_method(
                backend,
                lambda qi: rdt_plus.query(query_index=qi, k=K, t=T),
                queries,
                truth,
                K,
            )
            rows.append((backend, run.mean_recall, run.mean_seconds))
            results[(name, backend)] = run
        blocks.append(f"\n[{name} (n={n}, D={data.shape[1]})]")
        blocks.append(format_table(["backend", "recall", "mean_query_s"], rows))
    record("ablation_backends", "\n".join(blocks))
    return results


def test_backends_agree_on_quality(ablation):
    """Identical (t, k) gives identical recall regardless of back-end."""
    for name in DATASETS:
        recalls = {ablation[(name, b)].mean_recall for b in BACKENDS}
        assert max(recalls) - min(recalls) < 0.02


def test_benchmark_cover_tree_backend(benchmark, ablation):
    data = load_standin("sequoia", n=DATASETS["sequoia"], seed=0)
    rdt_plus = RDT(build_index("cover-tree", data), variant="rdt+")
    benchmark(lambda: rdt_plus.query(query_index=0, k=K, t=T))


def test_benchmark_linear_scan_backend(benchmark, ablation):
    data = load_standin("sequoia", n=DATASETS["sequoia"], seed=0)
    rdt_plus = RDT(build_index("linear-scan", data), variant="rdt+")
    benchmark(lambda: rdt_plus.query(query_index=0, k=K, t=T))
