"""Kernel-layer benchmark — SoA descent + fused filter vs the legacy paths.

The Fig-8-style end-to-end measurement behind the dtype/SoA work: one
member-query batch (n=100k, d=8, m=2000, k=10, t=4.0) through the
kd-tree, with every optimization toggled off (``vectorized_filter``,
``use_refine_caps``, ``use_flat_descent``) versus all on, best-of-3,
asserting result-id parity between the two.  A float32 sweep then
records the storage halving and its runtime.  Results go to
``benchmarks/results/kernels.txt`` (+ ``.json`` twin), the repo-root
``BENCH_kernels.json`` trajectory file, and a per-kernel call/byte
profile of the optimized run to ``benchmarks/results/kernel_profile.*``.
"""

from __future__ import annotations

import pathlib
import time
import warnings

import numpy as np
import pytest

from benchmarks.figure_driver import RESULTS_DIR, record
from repro import kernels
from repro.core.rdt import RDT
from repro.distances import EuclideanMetric
from repro.evaluation import write_bench_json
from repro.indexes import create_index
from repro.utils.profiling import profile_kernels

pytestmark = pytest.mark.slow

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

N = 100_000
DIM = 8
M = 2000
K = 10
T = 4.0
REPS = 3

#: Wall-clock gates on a shared runner (same idiom as test_serving.py):
#: the optimized path measured ~2.1x here; warn when a run lands under
#: the 2x target, fail only on a decisive loss a real regression would
#: produce anywhere.
SPEEDUP_TARGET = 2.0
SPEEDUP_FLOOR = 1.4


def _set_toggles(index, on: bool):
    RDT.vectorized_filter = on
    RDT.use_refine_caps = on
    if hasattr(index, "use_flat_descent"):
        index.use_flat_descent = on


def _run_batch(index, query_ids, *, optimized: bool, profile=None):
    """Best-of-REPS wall time for one full member-query batch."""
    _set_toggles(index, optimized)
    try:
        engine = RDT(index)
        best, ids = np.inf, None
        for _ in range(REPS):
            start = time.perf_counter()
            if profile is not None:
                with profile_kernels() as prof:
                    results = engine.query_batch(
                        query_indices=query_ids, k=K, t=T
                    )
                profile.append(prof)
            else:
                results = engine.query_batch(query_indices=query_ids, k=K, t=T)
            best = min(best, time.perf_counter() - start)
            ids = [sorted(r.ids) for r in results]
        return best, ids
    finally:
        _set_toggles(index, True)


def test_kernel_speedup_and_float32_memory_recorded():
    rng = np.random.default_rng(42)
    points = rng.normal(size=(N, DIM))
    query_ids = rng.choice(N, size=M, replace=False)

    # --- float64: legacy vs optimized, bit-parity required -------------
    f64 = create_index("kd-tree", points)
    legacy_s, legacy_ids = _run_batch(f64, query_ids, optimized=False)
    profiles: list = []
    opt_s, opt_ids = _run_batch(
        f64, query_ids, optimized=True, profile=profiles
    )
    assert legacy_ids == opt_ids, "optimized path changed result ids"
    speedup = legacy_s / opt_s

    # --- float32: storage halving + runtime ----------------------------
    f32 = create_index(
        "kd-tree", points, metric=EuclideanMetric(dtype=np.float32)
    )
    assert f32.points.dtype == np.float32
    matrix_ratio = f64.points.nbytes / f32.points.nbytes
    layout_ratio = (
        (f64.points.nbytes + f64._flat_layout().nbytes)
        / (f32.points.nbytes + f32._flat_layout().nbytes)
    )
    f32_s, f32_ids = _run_batch(f32, query_ids, optimized=True)
    overlap = np.mean(
        [
            len(set(a) & set(b)) / max(len(set(a) | set(b)), 1)
            for a, b in zip(opt_ids, f32_ids)
        ]
    )

    lines = [
        f"Kernel layer — end-to-end member-query batch "
        f"(n={N}, d={DIM}, m={M}, k={K}, t={T}, kd-tree, best of {REPS}, "
        f"backend={kernels.active_backend()})",
        f"{'path':28s} {'dtype':>8s} {'seconds':>9s} {'q/s':>8s}",
        f"{'legacy (toggles off)':28s} {'float64':>8s} {legacy_s:9.2f} "
        f"{M / legacy_s:8.0f}",
        f"{'SoA + fused filter':28s} {'float64':>8s} {opt_s:9.2f} "
        f"{M / opt_s:8.0f}",
        f"{'SoA + fused filter':28s} {'float32':>8s} {f32_s:9.2f} "
        f"{M / f32_s:8.0f}",
        f"speedup (legacy/optimized, float64, ids bit-match): {speedup:.2f}x",
        f"float32 point-matrix memory: {matrix_ratio:.2f}x smaller "
        f"({layout_ratio:.2f}x with flat layouts)",
        f"float32 vs float64 result-id Jaccard: {overlap:.4f}",
    ]

    payload = {
        "benchmark": "kernels",
        "n": N,
        "dim": DIM,
        "m": M,
        "k": K,
        "t": T,
        "reps": REPS,
        "backend": "kd-tree",
        "kernel_backend": kernels.active_backend(),
        "jit_available": kernels.jit_available(),
        "legacy_seconds": legacy_s,
        "optimized_seconds": opt_s,
        "float32_seconds": f32_s,
        "speedup": speedup,
        "float32_matrix_memory_ratio": matrix_ratio,
        "float32_total_memory_ratio": layout_ratio,
        "float32_id_jaccard": overlap,
        "ids_bit_match": True,
    }
    record("kernels", "\n".join(lines), data=payload)
    write_bench_json(BENCH_PATH, payload)

    # Per-kernel profile of the last optimized rep (checked-in artifact;
    # see repro/utils/profiling.py).
    prof = profiles[-1]
    (RESULTS_DIR / "kernel_profile.json").write_text(prof.to_json() + "\n")
    (RESULTS_DIR / "kernel_profile.txt").write_text(
        "Per-kernel counters, one optimized member-query batch "
        f"(n={N}, d={DIM}, m={M}, k={K}, t={T})\n" + prof.summary() + "\n"
    )
    assert prof.counters["euclidean_pairwise"].calls > 0
    assert prof.counters["keeper_update"].calls > 0

    # The float32 matrix is exactly half; flat layouts add int arrays
    # shared by both dtypes, so the combined ratio sits a little lower.
    assert matrix_ratio == 2.0
    assert layout_ratio > 1.6
    assert overlap > 0.99

    assert speedup > SPEEDUP_FLOOR, (
        f"optimized kernel path decisively slower than its measured ~2x "
        f"({speedup:.2f}x < {SPEEDUP_FLOOR}x)"
    )
    if speedup < SPEEDUP_TARGET:
        warnings.warn(
            f"kernel-layer speedup landed under the {SPEEDUP_TARGET}x "
            f"target this run ({speedup:.2f}x) — expected on a loaded "
            "machine, investigate if it persists",
            stacklevel=2,
        )
