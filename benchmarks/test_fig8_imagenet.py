"""Figure 8 — scalability on the Imagenet stand-in subsets.

Paper: Imagenet100/250/500 (100k/250k/500k subsets of the 1.28M corpus);
the exact methods' precomputation explodes with n (60 hours at 250k, weeks
at 500k — both excluded beyond that), while RDT+ preprocesses in seconds
and its recall-vs-time curve stays flat across subset sizes.

Stand-in scaling: subset sizes are reduced 1:100 (1200/2400/4800 points at
D=256), and the "precomputation budget" that excludes the exact methods
from the largest subset is enforced programmatically — the same cost-model
crossover at laptop scale.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.figure_driver import record
from repro.baselines import MRkNNCoP, RdNN
from repro.core import RDT
from repro.datasets import imagenet_standin
from repro.evaluation import (
    GroundTruth,
    format_table,
    render_curves,
    run_method,
    run_tradeoff,
    sample_query_indices,
)
from repro.indexes import LinearScanIndex, RdNNTreeIndex

pytestmark = pytest.mark.slow

#: scaled stand-ins for Imagenet100 / Imagenet250 / Imagenet500
SUBSETS = {"imagenet100": 800, "imagenet250": 2000, "imagenet500": 5000}
#: The paper evaluates MRkNNCoP and the RdNN-Tree on Imagenet100/250 and
#: excludes both from Imagenet500 onward (precomputation beyond two weeks).
#: We follow the same protocol; the measured build times in the report show
#: the superlinear growth that justifies it at full scale.
EXCLUDE_EXACT_ON = frozenset({"imagenet500"})
KS = (10, 50)
T_GRID = (2.0, 4.0, 6.0, 9.0)
N_QUERIES = 6


@pytest.fixture(scope="module")
def fig8():
    blocks = ["Figure 8 — Imagenet stand-in scalability"]
    artifacts = {}
    full = imagenet_standin(n=max(SUBSETS.values()), seed=0)
    for name, n in SUBSETS.items():
        data = full[:n]
        truth = GroundTruth(data)
        queries = sample_query_indices(n, N_QUERIES, seed=8)
        started = time.perf_counter()
        index = LinearScanIndex(data)
        rdt_plus = RDT(index, variant="rdt+")
        rdt_build = time.perf_counter() - started

        init_rows = [("RDT+ (forward index)", rdt_build)]
        exact = {}
        excluded = name in EXCLUDE_EXACT_ON
        started = time.perf_counter()
        cop = MRkNNCoP(data, k_max=max(KS))
        cop_build = time.perf_counter() - started
        if excluded:
            init_rows.append(("MRkNNCoP (EXCLUDED per paper protocol)", cop_build))
        else:
            exact["MRkNNCoP"] = cop
            init_rows.append(("MRkNNCoP", cop_build))
        started = time.perf_counter()
        trees = {k: RdNNTreeIndex(data, k=k) for k in KS}
        rdnn_build = time.perf_counter() - started
        if excluded:
            init_rows.append(
                ("RdNN-Tree (EXCLUDED per paper protocol)", rdnn_build)
            )
        else:
            exact["RdNN-Tree"] = trees
            init_rows.append((f"RdNN-Tree (x{len(KS)} trees)", rdnn_build))

        curves = {}
        exact_rows = {}
        for k in KS:
            curves[k] = run_tradeoff(
                "RDT+",
                lambda t: (lambda qi: rdt_plus.query(query_index=qi, k=k, t=t)),
                T_GRID,
                queries,
                truth,
                k,
            )
            rows = []
            if "MRkNNCoP" in exact:
                run = run_method(
                    "MRkNNCoP",
                    lambda qi: exact["MRkNNCoP"].query(query_index=qi, k=k),
                    queries,
                    truth,
                    k,
                )
                rows.append(("MRkNNCoP", run.mean_recall, run.mean_seconds))
            if "RdNN-Tree" in exact:
                rdnn = RdNN(exact["RdNN-Tree"][k])
                run = run_method(
                    "RdNN-Tree",
                    lambda qi: rdnn.query(query_index=qi),
                    queries,
                    truth,
                    k,
                )
                rows.append(("RdNN-Tree", run.mean_recall, run.mean_seconds))
            exact_rows[k] = rows

        artifacts[name] = {
            "rdt_plus": rdt_plus,
            "queries": queries,
            "curves": curves,
            "exact_rows": exact_rows,
            "init_rows": init_rows,
            "builds": {"rdt": rdt_build, "cop": cop_build, "rdnn": rdnn_build},
        }
        blocks.append(f"\n=== {name} (n={n}) ===")
        for k in KS:
            blocks.append(render_curves(f"\n--- k={k} ---", [curves[k]]))
            if exact_rows[k]:
                blocks.append(
                    format_table(
                        ["method", "recall", "mean_query_s"], exact_rows[k]
                    )
                )
        blocks.append("\ninitialization times:")
        blocks.append(format_table(["method", "seconds"], init_rows))
    record("fig8_imagenet_scalability", "\n".join(blocks))
    return artifacts


def test_fig8_regenerated(fig8):
    builds = {name: art["builds"] for name, art in fig8.items()}
    # Precompute cost grows superlinearly with n for the exact methods...
    assert builds["imagenet500"]["cop"] > 2.0 * builds["imagenet100"]["cop"]
    assert builds["imagenet500"]["rdnn"] > 2.0 * builds["imagenet100"]["rdnn"]
    # ...while RDT+'s preprocessing stays negligible in absolute terms.
    assert builds["imagenet500"]["rdt"] < 1.0
    # RDT+ keeps reaching high recall on the largest subset.
    top = fig8["imagenet500"]["curves"][10].recalls()[-1]
    assert top >= 0.9


def test_benchmark_rdt_plus_largest_subset(benchmark, fig8):
    art = fig8["imagenet500"]
    qi = int(art["queries"][0])
    benchmark(lambda: art["rdt_plus"].query(query_index=qi, k=10, t=6.0))


def test_benchmark_rdt_plus_smallest_subset(benchmark, fig8):
    art = fig8["imagenet100"]
    qi = int(art["queries"][0])
    benchmark(lambda: art["rdt_plus"].query(query_index=qi, k=10, t=6.0))
