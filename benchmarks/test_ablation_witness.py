"""Ablation A — the witness mechanism on/off.

Section 8.2 attributes RDT's advantage over SFT to the constant-overhead
lazy reject rule.  This ablation makes the claim directly testable: plain
RDT with witnesses disabled must verify every candidate with a forward-kNN
query, and the verification and distance-call counts separate the two
configurations.  (Since the refinement phase became a single batched
kNN-distance call, raw wall-clock no longer favors witnesses at this
small scale — vectorized brute verification is extremely cheap — so the
cost comparison uses the library's machine-independent distance-call
measure.)
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro.core import RDT
from repro.datasets import load_standin
from repro.evaluation import GroundTruth, format_table, run_method, sample_query_indices
from repro.indexes import LinearScanIndex

pytestmark = pytest.mark.slow

N = 2000
K = 10
T_SWEEP = (4.0, 8.0, 12.0)


@pytest.fixture(scope="module")
def ablation():
    data = load_standin("fct", n=N, seed=0)
    truth = GroundTruth(data)
    queries = sample_query_indices(N, 8, seed=10)
    index = LinearScanIndex(data)
    with_witnesses = RDT(index)
    without = RDT(index, use_witnesses=False)

    rows = []
    stats = {}
    for t in T_SWEEP:
        for label, method in (("witnesses", with_witnesses), ("no-witnesses", without)):
            run = run_method(
                label,
                lambda qi: method.query(query_index=qi, k=K, t=t),
                queries,
                truth,
                K,
                keep_results=True,
            )
            verified = float(
                np.mean([r.result.stats.num_verified for r in run.records])
            )
            candidates = float(
                np.mean([r.result.stats.num_candidates for r in run.records])
            )
            calls = float(
                np.mean([r.result.stats.num_distance_calls for r in run.records])
            )
            rows.append(
                (t, label, run.mean_recall, candidates, verified, run.mean_seconds)
            )
            stats[(t, label)] = (verified, run.mean_recall, calls)
    text = format_table(
        ["t", "config", "recall", "candidates", "verified", "mean_query_s"], rows
    )
    record("ablation_witness", "Ablation A — witness mechanism\n" + text)
    return stats


def test_witnesses_suppress_verifications(ablation):
    for t in T_SWEEP:
        with_v, with_recall, _ = ablation[(t, "witnesses")]
        without_v, without_recall, _ = ablation[(t, "no-witnesses")]
        assert with_v < 0.3 * without_v
        # The answer itself is identical for plain RDT.
        assert with_recall == pytest.approx(without_recall)


def test_witnesses_pay_off_at_large_t(ablation):
    """At large t (big candidate sets) the lazy rules cut distance work."""
    _, _, with_calls = ablation[(T_SWEEP[-1], "witnesses")]
    _, _, without_calls = ablation[(T_SWEEP[-1], "no-witnesses")]
    assert with_calls < without_calls


def test_benchmark_with_witnesses(benchmark, ablation):
    data = load_standin("fct", n=N, seed=0)
    rdt = RDT(LinearScanIndex(data))
    benchmark(lambda: rdt.query(query_index=0, k=K, t=8.0))


def test_benchmark_without_witnesses(benchmark, ablation):
    data = load_standin("fct", n=N, seed=0)
    rdt = RDT(LinearScanIndex(data), use_witnesses=False)
    benchmark(lambda: rdt.query(query_index=0, k=K, t=8.0))
