"""Ablation D — estimator-driven scale selection plus the adaptive variant.

Extends the paper's Section 6/8.1 comparison (RDT+(MLE) vs RDT+(GP) vs
RDT+(Takens)) with the future-work adaptive-t variant (Section 9),
reporting recall and query time per configuration on every stand-in.
"""

from __future__ import annotations

import pytest

from benchmarks.figure_driver import record
from repro.core import RDT, AdaptiveRDT, suggest_scale
from repro.datasets import load_standin
from repro.evaluation import GroundTruth, format_table, run_method, sample_query_indices
from repro.indexes import LinearScanIndex

pytestmark = pytest.mark.slow

DATASETS = {"sequoia": 2500, "fct": 2000, "aloi": 1200, "mnist": 1200}
K = 10


@pytest.fixture(scope="module")
def ablation():
    blocks = ["Ablation D — scale-selection strategies (k=10)"]
    results = {}
    for name, n in DATASETS.items():
        data = load_standin(name, n=n, seed=0)
        truth = GroundTruth(data)
        queries = sample_query_indices(n, 6, seed=13)
        index = LinearScanIndex(data)
        rdt_plus = RDT(index, variant="rdt+")
        adaptive = AdaptiveRDT(index)

        rows = []
        for method in ("mle", "gp", "takens"):
            t = suggest_scale(data, method=method, seed=0)
            run = run_method(
                f"RDT+({method})",
                lambda qi: rdt_plus.query(query_index=qi, k=K, t=t),
                queries,
                truth,
                K,
            )
            rows.append((f"RDT+({method})", round(t, 2), run.mean_recall, run.mean_seconds))
            results[(name, method)] = run
        run = run_method(
            "AdaptiveRDT",
            lambda qi: adaptive.query(query_index=qi, k=K),
            queries,
            truth,
            K,
        )
        rows.append(("AdaptiveRDT (per-query t)", float("nan"), run.mean_recall, run.mean_seconds))
        results[(name, "adaptive")] = run
        blocks.append(f"\n[{name} (n={n})]")
        blocks.append(format_table(["configuration", "t", "recall", "mean_query_s"], rows))
    record("ablation_estimators", "\n".join(blocks))
    return results


def test_estimator_configurations_viable(ablation):
    """Every estimator-driven configuration reaches useful recall."""
    for (name, method), run in ablation.items():
        assert run.mean_recall >= 0.5, (name, method)


def test_adaptive_competitive_with_global_estimates(ablation):
    for name in DATASETS:
        best_global = max(
            ablation[(name, m)].mean_recall for m in ("mle", "gp", "takens")
        )
        assert ablation[(name, "adaptive")].mean_recall >= best_global - 0.15


def test_benchmark_adaptive_query(benchmark, ablation):
    data = load_standin("fct", n=DATASETS["fct"], seed=0)
    adaptive = AdaptiveRDT(LinearScanIndex(data))
    benchmark(lambda: adaptive.query(query_index=0, k=K))
