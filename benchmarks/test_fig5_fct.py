"""Figure 5 — Forest Cover Type: recall vs query time for k in {10, 50, 100}.

Moderate dimensionality (53-D), low intrinsic dimension, strong cluster
imbalance.  The paper notes SFT gains a slight edge for some k thanks to
the very fast forward-kNN back-end on this set, while the witness rules pay
off as the candidate sets grow.
"""

from __future__ import annotations

import pytest

from benchmarks.figure_driver import record, render_figure, run_figure_experiment
from repro.datasets import load_standin

pytestmark = pytest.mark.slow

N = 1600


@pytest.fixture(scope="module")
def fig5():
    data = load_standin("fct", n=N, seed=0)
    art = run_figure_experiment(
        "fig5_fct",
        data,
        ks=(10, 50, 100),
        include_tpl_for_k=(10,),
    )
    record("fig5_fct", render_figure(art, f"Figure 5 — FCT stand-in (n={N}, D=53)"))
    return art


def test_fig5_regenerated(fig5):
    for curves in fig5.curves.values():
        rdt_curve, rdt_plus_curve, sft_curve = curves
        assert rdt_curve.recalls()[-1] >= 0.95
        # SFT recall is capped by its candidate pool: the top of the sweep
        # cannot beat RDT's top by a wide margin on clustered data.
        assert sft_curve.recalls()[-1] <= rdt_curve.recalls()[-1] + 0.02
    for rows in fig5.exact_rows.values():
        assert all(row[1] == 1.0 for row in rows)


def test_benchmark_rdt_query(benchmark, fig5):
    qi = int(fig5.queries[0])
    benchmark(lambda: fig5.rdt.query(query_index=qi, k=10, t=6.0))


def test_benchmark_rdt_plus_query(benchmark, fig5):
    qi = int(fig5.queries[0])
    benchmark(lambda: fig5.rdt_plus.query(query_index=qi, k=10, t=6.0))


def test_benchmark_sft_query(benchmark, fig5):
    qi = int(fig5.queries[0])
    benchmark(lambda: fig5.sft.query(query_index=qi, k=10, alpha=8.0))
