"""Batched query engine — all-points RkNN throughput benchmark.

The workload the batch engine exists for: the RkNN self-join over a
moderately sized, moderately dimensional dataset (n≈5000, d≈16, k=10),
answered once through a loop of single ``RDT.query`` calls and once
through ``RDT.query_all``.  The looped side is measured on a uniform
sample of the queries and extrapolated (it is the slow side; sampling
keeps the suite runtime bounded), the batched side runs the full join.
Results are recorded to ``benchmarks/results/batch_speedup.txt``.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro.core import RDT
from repro.datasets import gaussian_mixture
from repro.indexes import LinearScanIndex

pytestmark = pytest.mark.slow

N = 5000
DIM = 16
K = 10
T = 4.0
LOOP_SAMPLE = 200

#: The acceptance bar for the batched engine on this workload.
SPEEDUP_TARGET = 5.0
#: Hard wall-clock floor: below the target we warn (load flake, see the
#: assertion comment in test_batch_backends.py); below half of it we fail.
SPEEDUP_FLOOR = 0.5 * SPEEDUP_TARGET


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(N, dim=DIM, n_clusters=8, separation=4.0, seed=11)
    index = LinearScanIndex(data)
    return data, index, RDT(index)


def test_batch_speedup_recorded(workload):
    data, index, rdt = workload
    sample = np.linspace(0, N - 1, LOOP_SAMPLE).astype(np.intp)

    started = time.perf_counter()
    looped = [rdt.query(query_index=int(qi), k=K, t=T) for qi in sample]
    loop_seconds = time.perf_counter() - started
    per_query = loop_seconds / LOOP_SAMPLE
    loop_estimate = per_query * N

    started = time.perf_counter()
    batch = rdt.query_all(k=K, t=T)
    batch_seconds = time.perf_counter() - started

    speedup = loop_estimate / batch_seconds
    lines = [
        f"Batched RkNN engine — all-points workload (n={N}, d={DIM}, k={K}, t={T})",
        f"looped RDT.query      : {per_query * 1e3:8.3f} ms/query "
        f"-> {loop_estimate:7.2f} s extrapolated over all {N} queries "
        f"(measured on {LOOP_SAMPLE})",
        f"RDT.query_all (batch) : {batch_seconds / N * 1e3:8.3f} ms/query "
        f"-> {batch_seconds:7.2f} s total",
        f"speedup               : {speedup:8.1f} x",
    ]
    record(
        "batch_speedup",
        "\n".join(lines),
        data={
            "n": N,
            "dim": DIM,
            "k": K,
            "t": T,
            "looped_ms_per_query": per_query * 1e3,
            "batched_ms_per_query": batch_seconds / N * 1e3,
            "speedup": speedup,
        },
    )

    # Identical answers on the sampled queries.
    for qi, single in zip(sample, looped):
        assert np.array_equal(single.ids, batch[int(qi)].ids)
    # Wall-clock gate on a shared runner: the looped side is sampled and
    # extrapolated, so one scheduler hiccup inside the 200-query sample
    # scales up N/LOOP_SAMPLE-fold and can halve the measured ratio of a
    # genuinely fast batch path.  Below the target we warn (the recorded
    # JSON keeps the number for the cross-PR trajectory); only a decisive
    # collapse below SPEEDUP_FLOOR fails, which a real regression would
    # produce on any machine.
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched engine decisively below the {SPEEDUP_TARGET}x acceptance "
        f"bar ({speedup:.2f}x < {SPEEDUP_FLOOR}x)"
    )
    if speedup < SPEEDUP_TARGET:
        warnings.warn(
            f"batched engine below its {SPEEDUP_TARGET}x target this run "
            f"({speedup:.2f}x) — expected on a loaded machine, investigate "
            "if it persists",
            stacklevel=2,
        )


def test_batch_self_join_totals(workload):
    """The join consumes per-query stats; totals must aggregate sensibly."""
    from repro.mining import rknn_self_join

    data, index, rdt = workload
    subset = np.arange(0, N, 10, dtype=np.intp)
    join = rknn_self_join(index, k=K, t=T, point_ids=subset)
    assert len(join.neighborhoods) == subset.shape[0]
    totals = join.totals
    assert totals.num_retrieved > 0
    assert (
        totals.num_lazy_accepts + totals.num_lazy_rejects + totals.num_verified
        == totals.num_candidates + totals.num_excluded
    )
