"""Figure 3 — Sequoia: recall vs query time for k in {10, 50, 100}.

Paper panel contents: tradeoff curves for RDT/RDT+ (sweeping t) and SFT
(sweeping alpha), fixed points for the estimator-configured RDT+ variants,
exact competitors' query times, and the log-scale precomputation
comparison.  Sequoia is the small 2-D set where the exact methods are
strongest and the heuristics win only as recall approaches 100%.
"""

from __future__ import annotations

import pytest

from benchmarks.figure_driver import record, render_figure, run_figure_experiment
from repro.datasets import load_standin

pytestmark = pytest.mark.slow

N = 2500


@pytest.fixture(scope="module")
def fig3():
    data = load_standin("sequoia", n=N, seed=0)
    art = run_figure_experiment(
        "fig3_sequoia",
        data,
        ks=(10, 50, 100),
        include_tpl_for_k=(10,),
    )
    record("fig3_sequoia", render_figure(art, f"Figure 3 — Sequoia stand-in (n={N})"))
    return art


def test_fig3_regenerated(fig3):
    for k, curves in fig3.curves.items():
        for curve in curves:
            assert curve.recalls()[-1] >= curve.recalls()[0] - 0.05
    # Exact methods must be exact.
    for rows in fig3.exact_rows.values():
        assert all(row[1] == 1.0 for row in rows)


def test_benchmark_rdt_plus_query(benchmark, fig3):
    qi = int(fig3.queries[0])
    benchmark(lambda: fig3.rdt_plus.query(query_index=qi, k=10, t=6.0))


def test_benchmark_sft_query(benchmark, fig3):
    qi = int(fig3.queries[0])
    benchmark(lambda: fig3.sft.query(query_index=qi, k=10, alpha=8.0))
