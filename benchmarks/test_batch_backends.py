"""Pruned batched kNN — per-backend speedup over the chunked default.

Every tree backend overrides ``Index.knn_distances`` with a pruned block
traversal (``repro.indexes.batch_tools``); before this, only linear-scan
and ball-tree had batch paths and the five other backends silently fell
back to the quadratic chunked pairwise scan.  This benchmark times both
paths on the workload the batched RkNN engine issues — the k-th NN
distances of a large block of member rows, self-excluded — over a
clustered dataset big enough (n >= 5000) for pruning to matter, verifies
parity, and records the per-backend speedups to
``benchmarks/results/batch_backends.txt``.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro.datasets import gaussian_mixture
from repro.indexes import INDEX_REGISTRY, build_index
from repro.indexes.base import Index

pytestmark = pytest.mark.slow

N = 8000
M = 2000
DIM = 8
K = 10

#: Hard floor for the pruned-vs-chunked wall-clock ratio: below 1.0x we
#: only warn (load flake, see the assertion comment), below this we fail.
SPEEDUP_FLOOR = 0.5

#: Backends with a pruned override (linear-scan's override is a gather
#: skip over the same chunked kernel, so it is not expected to "win").
TREE_BACKENDS = sorted(name for name in INDEX_REGISTRY if name != "linear-scan")


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(N, dim=DIM, n_clusters=10, separation=8.0, seed=5)
    rows = np.linspace(0, N - 1, M).astype(np.intp)
    return data, data[rows], rows


def best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs — the assertion below compares
    single measurements on shared CI runners, where one scheduler hiccup
    would otherwise flake the scheduled job."""
    best_seconds, result = np.inf, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    return best_seconds, result


def test_pruned_batch_beats_chunked_default(workload):
    data, queries, exclude = workload
    lines = [
        f"Pruned batched knn_distances vs chunked default "
        f"(n={N}, m={M} member rows, d={DIM}, k={K}, self-excluded)",
        f"{'backend':14s} {'build':>8s} {'chunked':>10s} {'pruned':>10s} "
        f"{'speedup':>8s}",
    ]
    speedups = {}
    rows = {}
    for name in TREE_BACKENDS:
        started = time.perf_counter()
        index = build_index(name, data)
        build_seconds = time.perf_counter() - started

        chunked_seconds, reference = best_of(
            lambda: Index.knn_distances(index, queries, K, exclude)
        )
        pruned_seconds, pruned = best_of(
            lambda: index.knn_distances(queries, K, exclude_indices=exclude)
        )

        assert np.allclose(pruned, reference, rtol=1e-9), name
        speedups[name] = chunked_seconds / pruned_seconds
        rows[name] = {
            "build_seconds": build_seconds,
            "chunked_ms": chunked_seconds * 1e3,
            "pruned_ms": pruned_seconds * 1e3,
            "speedup": speedups[name],
        }
        lines.append(
            f"{name:14s} {build_seconds:7.2f}s {chunked_seconds * 1e3:8.1f}ms "
            f"{pruned_seconds * 1e3:8.1f}ms {speedups[name]:7.2f}x"
        )
    record(
        "batch_backends",
        "\n".join(lines),
        data={"n": N, "m": M, "dim": DIM, "k": K, "backends": rows},
    )
    # Every pruned override must beat the chunked scan on this workload.
    # Wall-clock gate, so it runs on shared/loaded machines: best-of-3
    # absorbs scheduler hiccups inside one path, but the two paths are
    # still timed at different moments — a noisy-neighbor burst during
    # the chunked run can make a genuinely faster pruned path "lose" by
    # a few percent.  Below 1.0x we warn (the recorded JSON keeps the
    # number for the cross-PR trajectory); only a decisive slowdown
    # (< SPEEDUP_FLOOR) fails, which a real regression would produce on
    # any machine.
    for name, speedup in speedups.items():
        assert speedup > SPEEDUP_FLOOR, (
            f"{name} pruned path decisively slower than the chunked "
            f"default ({speedup:.2f}x < {SPEEDUP_FLOOR}x)"
        )
        if speedup <= 1.0:
            warnings.warn(
                f"{name} pruned path did not beat the chunked default "
                f"this run ({speedup:.2f}x <= 1.0x) — expected on a "
                "loaded machine, investigate if it persists",
                stacklevel=2,
            )


def test_batched_join_over_tree_backend(workload):
    """End-to-end: the sequential-filter join over a pruning backend uses
    the pruned refinement and matches the linear-scan join exactly."""
    from repro.mining import rknn_self_join
    from repro.indexes import KDTreeIndex, LinearScanIndex

    data, _, _ = workload
    subset = np.arange(0, N, 40, dtype=np.intp)
    tree_join = rknn_self_join(
        KDTreeIndex(data), k=K, t=4.0, point_ids=subset, filter_mode="sequential"
    )
    scan_join = rknn_self_join(LinearScanIndex(data), k=K, t=4.0, point_ids=subset)
    assert tree_join.neighborhoods.keys() == scan_join.neighborhoods.keys()
    for pid in subset:
        assert np.array_equal(
            tree_join.neighborhoods[int(pid)], scan_join.neighborhoods[int(pid)]
        )
