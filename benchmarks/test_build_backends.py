"""Preprocessing benchmark — vectorized bulk builds vs the insert loops.

The paper's scalability story (Figures 8–9) is about *preprocessing* cost,
and after the query side went batched and pruned, index construction was
the dominant wall-clock cost of tree-backed runs: the M-tree and cover
tree were built by n sequential scalar-descent inserts.  Every backend now
constructs through a vectorized bulk path (sampled-pivot partitioning for
the M-tree, divide-and-conquer covering for the cover tree, index-array
partitioning for KD/VP/ball, the vectorized STR packer for the R*-tree)
with the insert loops retained as baselines.

This module records the construction-cost trajectory: build seconds per
backend at multiple n through the uniform
:func:`~repro.evaluation.run_precompute_suite` timer, bulk-vs-insert
speedups for every backend that keeps both paths, and bulk-vs-insert
query parity.  Results go to ``benchmarks/results/build_backends.txt``
(+ ``.json`` twin) and to the repo-root ``BENCH_build.json``, the
machine-readable record future PRs diff against.  The acceptance gate is
a >= 5x bulk speedup for the M-tree and the cover tree at n = 8000.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro.datasets import gaussian_mixture
from repro.evaluation import (
    BuildRecord,
    bench_payload,
    index_builders,
    run_precompute_suite,
    write_bench_json,
)
from repro.indexes import INDEX_REGISTRY, build_index

pytestmark = pytest.mark.slow

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_build.json"

N_GRID = (2000, 8000)
DIM = 8
K = 10
#: The acceptance gate: minimum bulk-over-insert speedup at max(N_GRID)
#: for the backends whose construction the overhaul targeted.
GATED_BACKENDS = {"m-tree": 5.0, "cover-tree": 5.0}


@pytest.fixture(scope="module")
def dataset():
    return gaussian_mixture(
        max(N_GRID), dim=DIM, n_clusters=10, separation=8.0, seed=5
    )


def _records_for(data, n: int) -> list[BuildRecord]:
    builders = index_builders(data[:n], include_insert_paths=True)
    reports = run_precompute_suite(builders)
    records = []
    for report in reports:
        backend, _, suffix = report.method.partition("[")
        mode = "insert" if suffix else "bulk"
        records.append(
            BuildRecord(
                backend=backend, n=n, dim=DIM, mode=mode, seconds=report.seconds
            )
        )
    return records


def test_build_trajectory_recorded(dataset):
    records: list[BuildRecord] = []
    for n in N_GRID:
        records.extend(_records_for(dataset, n))
    payload = bench_payload(
        records, extra={"dim": DIM, "gates": dict(GATED_BACKENDS)}
    )
    write_bench_json(BENCH_PATH, payload)

    lines = [
        f"Index construction — bulk path vs insert-loop baseline "
        f"(d={DIM}, n in {list(N_GRID)})",
        f"{'backend':14s} {'n':>6s} {'bulk':>10s} {'insert':>10s} {'speedup':>8s}",
    ]
    by_key: dict[tuple[str, int], dict[str, float]] = {}
    for rec in records:
        by_key.setdefault((rec.backend, rec.n), {})[rec.mode] = rec.seconds
    for (backend, n), modes in sorted(by_key.items()):
        bulk_ms = modes["bulk"] * 1e3
        if "insert" in modes:
            insert_ms = modes["insert"] * 1e3
            speedup = f"{modes['insert'] / modes['bulk']:7.2f}x"
            lines.append(
                f"{backend:14s} {n:6d} {bulk_ms:8.1f}ms {insert_ms:8.1f}ms {speedup}"
            )
        else:
            lines.append(f"{backend:14s} {n:6d} {bulk_ms:8.1f}ms {'-':>10s} {'-':>8s}")
    record(
        "build_backends",
        "\n".join(lines),
        data={k: v for k, v in payload.items() if k != "benchmark"},
    )

    speedups = payload["bulk_speedup"]
    n_max = max(N_GRID)
    for backend, floor in GATED_BACKENDS.items():
        measured = speedups[f"{backend}@{n_max}"]
        assert measured >= floor, (
            f"{backend} bulk build only {measured:.1f}x over the insert loop "
            f"at n={n_max} (gate: {floor}x)"
        )


@pytest.mark.parametrize("name", sorted(GATED_BACKENDS) + ["r-star-tree"])
def test_bulk_and_insert_builds_answer_identically(name, dataset):
    """The two construction paths of each dual-path backend must serve
    identical k-th NN distances on the benchmark workload."""
    from repro.evaluation.precompute import INSERT_PATH_FLAGS

    data = dataset[:2000]
    bulk = build_index(name, data)
    insert_built = build_index(name, data, **INSERT_PATH_FLAGS[name])
    rows = np.arange(0, data.shape[0], 17, dtype=np.intp)
    got = bulk.knn_distances(data[rows], K, exclude_indices=rows)
    expected = insert_built.knn_distances(data[rows], K, exclude_indices=rows)
    assert np.allclose(got, expected, rtol=1e-9)
