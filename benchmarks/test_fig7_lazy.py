"""Figure 7 — proportions of lazy accepts / lazy rejects / verifications.

Paper: for k=10 and t swept over [2, 14], the fraction of candidates
treated by each mechanism, with the achieved recall overlaid.  The
reproduced shape: verification dominates at small t (few candidates, few
witnesses), lazy rejection takes over as t grows, and lazy accepts stay a
small-but-significant slice — which is why RDT beats SFT once candidate
sets are large (Section 8.2).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.figure_driver import record
from repro.core import RDT
from repro.datasets import load_standin
from repro.evaluation import GroundTruth, format_table, sample_query_indices
from repro.evaluation.metrics import recall as recall_of
from repro.indexes import LinearScanIndex

pytestmark = pytest.mark.slow

SIZES = {"sequoia": 2500, "fct": 2000, "aloi": 1200, "mnist": 1200}
T_SWEEP = (2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0)
K = 10
N_QUERIES = 8


@pytest.fixture(scope="module")
def fig7():
    blocks = ["Figure 7 — candidate treatment proportions, k=10"]
    tables = {}
    for name, n in SIZES.items():
        data = load_standin(name, n=n, seed=0)
        truth = GroundTruth(data)
        queries = sample_query_indices(n, N_QUERIES, seed=7)
        rdt_plus = RDT(LinearScanIndex(data), variant="rdt+")
        rows = []
        for t in T_SWEEP:
            proportions = {"accept": [], "reject": [], "verify": []}
            recalls = []
            for qi in queries:
                result = rdt_plus.query(query_index=int(qi), k=K, t=t)
                for key, value in result.stats.proportions().items():
                    proportions[key].append(value)
                recalls.append(recall_of(truth.answer(int(qi), K), result.ids))
            rows.append(
                (
                    t,
                    float(np.mean(proportions["verify"])),
                    float(np.mean(proportions["accept"])),
                    float(np.mean(proportions["reject"])),
                    float(np.mean(recalls)),
                )
            )
        tables[name] = rows
        blocks.append(f"\n[{name} (k={K})]")
        blocks.append(
            format_table(["t", "verify", "accept", "reject", "recall"], rows)
        )
    record("fig7_lazy_proportions", "\n".join(blocks))
    return tables


def test_fig7_regenerated(fig7):
    for name, rows in fig7.items():
        # Proportions partition the candidates at every t.
        for t, verify, accept, reject, recall in rows:
            assert verify + accept + reject == pytest.approx(1.0)
        # Rejection dominates once the search expands (large t).
        assert rows[-1][3] > 0.5, name
        # Recall at the top of the sweep approaches 1.
        assert rows[-1][4] >= 0.95, name


def test_benchmark_instrumented_query(benchmark, fig7):
    data = load_standin("fct", n=SIZES["fct"], seed=0)
    rdt_plus = RDT(LinearScanIndex(data), variant="rdt+")
    benchmark(lambda: rdt_plus.query(query_index=0, k=K, t=8.0))
