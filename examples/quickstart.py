"""Quickstart: answer reverse k-nearest-neighbor queries with RDT.

Builds an index over a synthetic dataset, runs one RkNN query three ways —
exact brute force, RDT with a hand-picked scale parameter, and RDT+ with an
estimator-chosen scale — and prints what each costs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RDT, CoverTreeIndex, NaiveRkNN, suggest_scale
from repro.datasets import gaussian_mixture


def main() -> None:
    # A clustered dataset: 5000 points in 8 dimensions.
    data = gaussian_mixture(5000, dim=8, n_clusters=6, separation=6.0, seed=0)
    k = 10
    query_index = 42

    # Ground truth by brute force (O(n^2) preprocessing; fine at this size).
    naive = NaiveRkNN(data, k=k)
    truth = naive.query_ids(query_index=query_index)
    print(f"exact RkNN of point {query_index} (k={k}): {truth.tolist()}")

    # RDT over a cover tree: no preprocessing beyond the forward index.
    index = CoverTreeIndex(data)
    rdt = RDT(index)
    result = rdt.query(query_index=query_index, k=k, t=8.0)
    print(
        f"\nRDT  (t=8.0): {sorted(result.ids.tolist())}\n"
        f"  retrieved {result.stats.num_retrieved} of {len(data)} points, "
        f"verified {result.stats.num_verified} candidates explicitly,\n"
        f"  lazily accepted {result.stats.num_lazy_accepts} and rejected "
        f"{result.stats.num_lazy_rejects}, "
        f"terminated by {result.stats.terminated_by}"
    )

    # RDT+ with the scale parameter chosen by the MLE intrinsic-dimension
    # estimator — the paper's recommended hands-off configuration.
    t_auto = suggest_scale(data, method="mle", seed=0)
    rdt_plus = RDT(index, variant="rdt+")
    result = rdt_plus.query(query_index=query_index, k=k, t=t_auto)
    recall = len(set(result.ids) & set(truth)) / max(1, len(truth))
    print(
        f"\nRDT+ (t={t_auto:.2f} from MLE): recall={recall:.2f}, "
        f"{result.stats.num_distance_calls} distance computations, "
        f"{result.stats.total_seconds * 1e3:.1f} ms"
    )

    # Many queries? Don't loop — the batched engine answers a whole
    # workload with vectorized phases and identical results.
    workload = np.arange(0, 200)
    batch = rdt.query_batch(query_indices=workload, k=k, t=8.0)
    verified = sum(r.stats.num_verified for r in batch)
    print(
        f"\nquery_batch over {len(workload)} queries: "
        f"{sum(len(r) for r in batch)} reverse neighbors total, "
        f"{verified} explicit verifications across the batch"
    )


if __name__ == "__main__":
    main()
