"""Hubness analysis: which points dominate nearest-neighbor graphs?

The paper's Section 1 cites hubness (Tomasev et al.) as an RkNN
application: the hubness of a point is its in-degree in the kNN graph —
exactly the size of its reverse-kNN set.  High-dimensional data grows
"hubs" that appear in a disproportionate share of neighborhoods and distort
downstream mining; this example measures that skew as dimension rises,
reproducing the classic hubness phenomenon with RkNN machinery.

Run:  python examples/hubness_analysis.py
"""

from scipy import stats

from repro import LinearScanIndex
from repro.datasets import gaussian_blob
from repro.mining import hubness_counts


def main() -> None:
    k = 5
    print(f"hubness of {k}-NN graphs on 1000 Gaussian points, rising dimension")
    print(f"{'dim':>4} {'max in-degree':>14} {'skewness':>9}")
    skews = []
    for dim in (2, 8, 32):
        index = LinearScanIndex(gaussian_blob(1000, dim, seed=3))
        # Large t: exact counts (this is an analysis, not a latency demo).
        counts = hubness_counts(index, k=k, t=50.0)
        skews.append(float(stats.skew(counts.astype(float))))
        print(f"{dim:>4} {counts.max():>14} {skews[-1]:>9.2f}")
    if not skews[0] < skews[-1]:
        raise SystemExit("hubness skew should grow with dimensionality")
    print("\nin-degree skew grows with dimension: the hubness phenomenon.")


if __name__ == "__main__":
    main()
