"""Approximate RkNN: trading measured recall for another speed multiplier.

The batched exact engine already answers whole workloads vectorized; this
walkthrough shows the next gear — the approximate subsystem
(`repro.approx`) — and how to *measure* what it trades away.  Both
strategies answer through the same API as `RDT`:

* ``sampled``: never loses a true reverse neighbor (its sampled kNN
  table is a provable upper bound); the knob is the sample size.
* ``lsh``: never reports a false one (every candidate is verified); the
  knob is the number of hash tables.
* ``graph``: never reports a false one either — an HRNN-style navigable
  kNN graph whose reverse adjacency is the shortlist; the knob is the
  beam width ``ef``.  Built for high dimensions, where it wins big.

The sweep below scores each knob setting against brute-force ground
truth and reports recall / precision / speedup over the exact engine —
the workflow behind `BENCH_approx.json`.

Run:  python examples/approximate_search.py [--n 4000] [--dim 8] [--k 10]
"""

import argparse

from repro import RDT, ApproxRkNN, LinearScanIndex
from repro.datasets import gaussian_mixture
from repro.evaluation import (
    GroundTruth,
    render_approx_tradeoffs,
    run_approx_tradeoff,
    sample_query_indices,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4000, help="dataset size")
    parser.add_argument("--dim", type=int, default=8, help="dimensions")
    parser.add_argument("--k", type=int, default=10, help="neighborhood size")
    parser.add_argument(
        "--queries", type=int, default=0,
        help="query sample size (0 = all points)",
    )
    args = parser.parse_args()

    data = gaussian_mixture(
        args.n, dim=args.dim, n_clusters=6, separation=5.0, seed=42
    )
    index = LinearScanIndex(data)
    truth = GroundTruth(data)
    queries = (
        index.active_ids()
        if args.queries <= 0
        else sample_query_indices(args.n, args.queries, seed=7)
    )
    rdt = RDT(index)

    def sampled_for(sample_size):
        engine = ApproxRkNN(index, "sampled", sample_size=int(sample_size), seed=1)
        return lambda qis: engine.query_batch(query_indices=qis, k=args.k)

    def lsh_for(n_tables):
        engine = ApproxRkNN(index, "lsh", n_tables=int(n_tables), seed=1)
        return lambda qis: engine.query_batch(query_indices=qis, k=args.k)

    def graph_for(ef):
        engine = ApproxRkNN(index, "graph", ef=int(ef), graph_m=16, seed=1)
        return lambda qis: engine.query_batch(query_indices=qis, k=args.k)

    sampled = run_approx_tradeoff(
        "sampled",
        sampled_for,
        (max(64, args.n // 16), max(128, args.n // 8)),
        queries,
        truth,
        args.k,
        exact_batch_fn=lambda qis: rdt.query_batch(
            query_indices=qis, k=args.k, t=4.0
        ),
    )
    lsh = run_approx_tradeoff(
        "lsh",
        lsh_for,
        (4, 8),
        queries,
        truth,
        args.k,
        exact_seconds=sampled.exact_seconds,
    )
    graph = run_approx_tradeoff(
        "graph",
        graph_for,
        (32, 64),
        queries,
        truth,
        args.k,
        exact_seconds=sampled.exact_seconds,
    )

    print(
        render_approx_tradeoffs(
            f"Approximate RkNN sweep (n={args.n}, d={args.dim}, "
            f"k={args.k}, {len(queries)} queries)",
            [sampled, lsh, graph],
        )
    )
    best = sampled.best_gated(0.95)
    print(
        "\nsampled strategy at recall "
        f"{best.recall:.2f}: {best.speedup:.1f}x the exact batched engine"
    )
    print(
        "note the asymmetry: 'sampled' keeps recall=1 by construction and\n"
        "spends its error budget on unverified accepts; 'lsh' and 'graph'\n"
        "keep precision=1 and spend it on candidates they never saw."
    )


if __name__ == "__main__":
    main()
