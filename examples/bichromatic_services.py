"""Bichromatic RkNN: siting a facility by the clients it would capture.

The paper's Section 1 describes the bichromatic setting: one object type
represents services, the other clients.  A candidate facility location
q "captures" the clients that would count q among their k closest
facilities — its bichromatic reverse k-nearest neighbors.  This example
compares candidate sites for a new facility by the number of clients each
would capture, using the dimensional-testing BRkNN extension.

Run:  python examples/bichromatic_services.py
"""

import numpy as np

from repro.core import BichromaticRDT, bichromatic_brute_force
from repro.datasets import gaussian_mixture
from repro.indexes import CoverTreeIndex
from repro.utils.rng import ensure_rng


def main() -> None:
    rng = ensure_rng(23)
    # Clients cluster into neighborhoods; existing facilities are sparse.
    clients = gaussian_mixture(3000, dim=2, n_clusters=8, separation=10.0, seed=23)
    services = rng.uniform(
        clients.min(axis=0), clients.max(axis=0), size=(15, 2)
    )
    k = 2  # a client considers its 2 nearest facilities

    brknn = BichromaticRDT(CoverTreeIndex(clients), CoverTreeIndex(services))
    candidate_sites = rng.uniform(
        clients.min(axis=0), clients.max(axis=0), size=(6, 2)
    )

    print(f"{len(clients)} clients, {len(services)} existing facilities, k={k}")
    print(f"{'site':>4} {'captured clients':>17} {'exact?':>7}")
    captures = []
    for site_no, site in enumerate(candidate_sites):
        result = brknn.query(site, k=k, t=8.0)
        exact = bichromatic_brute_force(clients, services, site, k=k)
        captures.append(len(result))
        match = "yes" if set(result.ids.tolist()) == set(exact.tolist()) else "~"
        print(f"{site_no:>4} {len(result):>17} {match:>7}")

    best = int(np.argmax(captures))
    print(
        f"\nbest candidate: site {best} at {np.round(candidate_sites[best], 2)}"
        f" capturing {captures[best]} clients"
    )


if __name__ == "__main__":
    main()
