"""One front door: the Service facade over engines, backends, and specs.

Walks the unified API end to end on one synthetic dataset:

1. build a Service (``backend`` and ``engine`` chosen by registry name,
   defaults bundled in one QuerySpec);
2. answer single / batched / all-points queries, overriding the spec per
   call;
3. swap the engine by name — same data, same call sites — and compare
   the exact answer against an approximate engine's;
4. churn the member set (insert/remove) and watch engines follow;
5. save the service to one ``.npz`` file, load it back, and verify the
   round trip reproduces the all-points answers exactly.

Run:  python examples/service_quickstart.py [--n 4000] [--dim 8] [--k 10]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.datasets import gaussian_mixture


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=2000, help="dataset size")
    parser.add_argument("--dim", type=int, default=8, help="dimensions")
    parser.add_argument("--k", type=int, default=10, help="neighborhood size")
    parser.add_argument("--t", type=float, default=8.0, help="scale parameter")
    args = parser.parse_args()

    data = gaussian_mixture(
        args.n, dim=args.dim, n_clusters=6, separation=6.0, seed=0
    )
    print(
        f"Service quickstart: n={args.n}, dim={args.dim}, "
        f"k={args.k}, t={args.t}"
    )

    # 1. One front door: backend + engine by registry name, defaults in
    #    one validated QuerySpec.
    svc = repro.Service(
        data,
        backend="kd",
        engine="rdt+",
        defaults=repro.QuerySpec(k=args.k, t=args.t),
    )
    print(f"\n{svc!r}")

    # 2. Query three ways; per-call overrides patch the default spec.
    single = svc.query(query_index=42)
    print(
        f"\nquery(42): {len(single)} reverse neighbors, "
        f"{single.stats.num_verified} verified, "
        f"terminated by {single.stats.terminated_by}"
    )
    batch = svc.query_batch(query_indices=np.arange(64), t=args.t / 2)
    print(
        f"query_batch(64 queries, t={args.t / 2}): "
        f"{sum(len(r) for r in batch)} reverse neighbors total"
    )
    join = svc.query_all()
    counts = np.array([len(r) for r in join.values()])
    print(
        f"query_all: self-join over {len(join)} points, "
        f"mean in-degree {counts.mean():.2f}"
    )

    # 3. Engine swap by name: the exact answer vs the recall-guaranteed
    #    approximate engine, same data and call sites.  The exact side
    #    uses plain "rdt" (guarantee: scale-exact) — rdt+ trades
    #    precision, so its answers can exceed the true set.
    exact = repro.create_engine("rdt", svc.index)
    approx = repro.Service(
        data,
        backend="kd",
        engine="approx-sampled",
        defaults=repro.QuerySpec(k=args.k, sample_size=512),
    )
    exact_ids = set(
        exact.query(query_index=42, k=args.k, t=1e30).ids.tolist()
    )
    approx_ids = set(approx.query(query_index=42).ids.tolist())
    print(
        f"\nengine swap: exact rdt found {len(exact_ids)}, approx-sampled "
        f"found {len(approx_ids)} "
        f"(misses none by construction: {exact_ids <= approx_ids})"
    )

    # 4. Dynamic updates go through the facade; engines follow the churn.
    removed = [1, 2, 3]
    for pid in removed:
        svc.remove(pid)
    new_id = svc.insert(data[:50].mean(axis=0))
    refreshed = svc.query(query_index=new_id)
    print(
        f"\nchurn: removed {removed}, inserted id {new_id}; "
        f"new point has {len(refreshed)} reverse neighbors "
        f"({svc.size} live members)"
    )

    # 5. Persistence: one .npz file, bit-identical answers after reload
    #    (probed with a batch over a live-member sample; the full
    #    query_all equality is pinned by tests/api/test_service.py).
    with tempfile.TemporaryDirectory() as tmp:
        path = svc.save(Path(tmp) / "service.npz")
        size_kb = path.stat().st_size / 1024
        loaded = repro.Service.load(path)
        probe = svc.active_ids()[:: max(1, svc.size // 256)]
        before = svc.query_batch(query_indices=probe)
        after = loaded.query_batch(query_indices=probe)
        identical = all(
            np.array_equal(b.ids, a.ids) for b, a in zip(before, after)
        )
        print(
            f"\nsave/load: {size_kb:.0f} KiB payload, engine "
            f"{loaded.engine_name!r} on {loaded.backend_name!r}, "
            f"round-trip identical over {len(probe)} probes: {identical}"
        )


if __name__ == "__main__":
    main()
