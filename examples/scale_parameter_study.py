"""How to choose the scale parameter t — a practical walkthrough.

Reproduces the paper's Section 6 workflow on one dataset: estimate the
intrinsic dimensionality three ways, run RDT+ at each suggested t plus a
sweep of manual values, and print the time/recall landscape so the
tradeoff (and the MaxGED exactness threshold) is visible in one table.

Run:  python examples/scale_parameter_study.py [--n 1500] [--k 10]
"""

import argparse

import numpy as np

from repro import RDT, LinearScanIndex, NaiveRkNN, suggest_scale
from repro.datasets import load_standin
from repro.evaluation import format_table
from repro.lid import theorem1_scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1500, help="dataset size")
    parser.add_argument("--k", type=int, default=10, help="neighborhood size")
    args = parser.parse_args()

    data = load_standin("fct", n=args.n, seed=1)
    k = args.k
    naive = NaiveRkNN(data, k=k)
    queries = list(range(0, args.n, max(1, args.n // 10)))
    truth = {qi: set(naive.query_ids(query_index=qi).tolist()) for qi in queries}

    rdt_plus = RDT(LinearScanIndex(data), variant="rdt+")

    def evaluate(t: float) -> tuple[float, float]:
        recalls, times = [], []
        for qi in queries:
            result = rdt_plus.query(query_index=qi, k=k, t=t)
            got = set(result.ids.tolist())
            recalls.append(
                len(got & truth[qi]) / max(1, len(truth[qi]))
            )
            times.append(result.stats.total_seconds)
        return float(np.mean(recalls)), float(np.mean(times))

    rows = []
    for t in (1.0, 2.0, 4.0, 8.0, 16.0):
        recall, seconds = evaluate(t)
        rows.append((f"manual t={t}", t, recall, seconds))
    for method in ("mle", "gp", "takens"):
        t = suggest_scale(data, method=method, seed=0)
        recall, seconds = evaluate(t)
        rows.append((f"estimator {method}", round(t, 2), recall, seconds))

    t_star = theorem1_scale(data, k=k)
    rows.append(("MaxGED (Theorem 1 bound)", round(t_star, 1), *evaluate(t_star)))

    print(format_table(["configuration", "t", "recall", "mean_query_s"], rows))
    print(
        "\nNote how the exactness threshold (MaxGED) is orders of magnitude\n"
        "above the estimator suggestions, yet the estimators already reach\n"
        "~full recall — the paper's Section 6 argument for estimating ID\n"
        "directly instead of bounding it."
    )


if __name__ == "__main__":
    main()
