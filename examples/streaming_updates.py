"""Dynamic data: tracking reverse neighborhoods under inserts and deletes.

The paper's Section 1 motivates RkNN for data warehouses and streams:
when a record arrives or expires, the points *influenced* by the change are
exactly the reverse neighbors of the changed location.  Because RDT keeps
no per-dataset state beyond the forward index (Section 4), updates cost
only an index insert/remove — no kNN tables to rebuild, unlike the
RdNN-tree / MRkNNCoP family.

This example maintains a sliding window over a drifting stream and, for
each batch of arrivals, reports which resident points gained the new
arrivals as reverse neighbors.

Run:  python examples/streaming_updates.py [--window 600] [--batch 50]
      [--rounds 6] [--k 8]
"""

import argparse
from collections import deque

import numpy as np

from repro import RDT, CoverTreeIndex
from repro.utils.rng import ensure_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window", type=int, default=600, help="window size")
    parser.add_argument("--batch", type=int, default=50, help="arrivals per round")
    parser.add_argument("--rounds", type=int, default=6, help="stream rounds")
    parser.add_argument("--k", type=int, default=8, help="neighborhood size")
    args = parser.parse_args()
    window_size, batch, rounds, k = args.window, args.batch, args.rounds, args.k

    rng = ensure_rng(11)
    center = np.zeros(4)

    initial = rng.normal(size=(window_size, 4))
    index = CoverTreeIndex(initial)
    window: deque[int] = deque(range(window_size))
    rdt_plus = RDT(index, variant="rdt+")

    print(f"sliding window of {window_size} points, batches of {batch}, k={k}")
    for round_no in range(rounds):
        center += rng.normal(scale=0.4, size=4)  # concept drift
        influenced: set[int] = set()
        for _ in range(batch):
            point = center + rng.normal(size=4)
            new_id = index.insert(point)
            window.append(new_id)
            # Who is influenced by this arrival?  Its reverse neighbors.
            result = rdt_plus.query(query_index=new_id, k=k, t=6.0)
            influenced.update(result.ids.tolist())
            expired = window.popleft()
            index.remove(expired)
        influenced &= set(window)
        print(
            f"round {round_no}: window={index.size}, "
            f"{len(influenced)} resident points had their {k}-NN "
            f"neighborhood changed by arrivals"
        )
    if index.size != window_size:
        raise SystemExit("window size drifted — insert/remove mismatch")
    print("\nwindow maintained with pure index updates; no precomputed "
          "kNN tables were ever rebuilt.")


if __name__ == "__main__":
    main()
