"""Dynamic data: tracking reverse neighborhoods under inserts and deletes.

The paper's Section 1 motivates RkNN for data warehouses and streams:
when a record arrives or expires, the points *influenced* by the change are
exactly the reverse neighbors of the changed location.  Because RDT keeps
no per-dataset state beyond the forward index (Section 4), updates cost
only an index insert/remove — no kNN tables to rebuild, unlike the
RdNN-tree / MRkNNCoP family.

This example maintains a sliding window over a drifting stream and, for
each batch of arrivals, reports which resident points gained the new
arrivals as reverse neighbors.

Run:  python examples/streaming_updates.py
"""

from collections import deque

import numpy as np

from repro import RDT, CoverTreeIndex
from repro.utils.rng import ensure_rng

WINDOW = 600
BATCH = 50
ROUNDS = 6
K = 8


def main() -> None:
    rng = ensure_rng(11)
    center = np.zeros(4)

    initial = rng.normal(size=(WINDOW, 4))
    index = CoverTreeIndex(initial)
    window: deque[int] = deque(range(WINDOW))
    rdt_plus = RDT(index, variant="rdt+")

    print(f"sliding window of {WINDOW} points, batches of {BATCH}, k={K}")
    for round_no in range(ROUNDS):
        center += rng.normal(scale=0.4, size=4)  # concept drift
        influenced: set[int] = set()
        for _ in range(BATCH):
            point = center + rng.normal(size=4)
            new_id = index.insert(point)
            window.append(new_id)
            # Who is influenced by this arrival?  Its reverse neighbors.
            result = rdt_plus.query(query_index=new_id, k=K, t=6.0)
            influenced.update(result.ids.tolist())
            expired = window.popleft()
            index.remove(expired)
        influenced &= set(window)
        print(
            f"round {round_no}: window={index.size}, "
            f"{len(influenced)} resident points had their {K}-NN "
            f"neighborhood changed by arrivals"
        )
    if index.size != WINDOW:
        raise SystemExit("window size drifted — insert/remove mismatch")
    print("\nwindow maintained with pure index updates; no precomputed "
          "kNN tables were ever rebuilt.")


if __name__ == "__main__":
    main()
