"""Outlier detection with reverse-kNN counts (ODIN-style).

One of the paper's motivating applications (Section 1, refs [18, 27, 37]):
a point that appears in few other points' k-nearest neighborhoods has low
"influence" — reverse-neighbor counts are an outlier score.  This example
scores a contaminated dataset with RDT-powered RkNN counts and checks that
the planted outliers surface at the bottom of the ranking.

Run:  python examples/outlier_detection.py
"""

import numpy as np

from repro import CoverTreeIndex
from repro.datasets import gaussian_mixture
from repro.mining import odin_scores
from repro.utils.rng import ensure_rng


def main() -> None:
    rng = ensure_rng(7)
    inliers = gaussian_mixture(1500, dim=6, n_clusters=4, separation=6.0, seed=7)
    # Plant outliers well outside the cluster envelope.
    directions = rng.normal(size=(25, 6))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    outliers = directions * rng.uniform(30.0, 60.0, size=(25, 1))
    data = np.vstack([inliers, outliers])
    outlier_ids = set(range(len(inliers), len(data)))

    scores = odin_scores(CoverTreeIndex(data), k=10, t=6.0)
    # Low in-degree = low influence = outlier.  Scores tie heavily at the
    # bottom (many counts of 0/1), so rank-based evaluation uses the bottom
    # decile rather than an exact cutoff.
    decile = np.argsort(scores)[: len(data) // 10]
    hits = len(set(decile.tolist()) & outlier_ids)
    print(f"planted outliers: {len(outlier_ids)}, bottom decile: {len(decile)}")
    print(f"planted outliers found in bottom decile: {hits}/{len(outlier_ids)}")
    print(f"mean RkNN count, inliers : {scores[: len(inliers)].mean():.2f}")
    print(f"mean RkNN count, outliers: {scores[len(inliers):].mean():.2f}")
    if hits < 0.8 * len(outlier_ids):
        raise SystemExit("outlier recovery unexpectedly poor")


if __name__ == "__main__":
    main()
