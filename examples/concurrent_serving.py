"""Concurrent serving: MVCC reads, coalesced dispatch, epoch-keyed caching.

A `repro.Service` is safe to share across threads: every insert/remove
publishes a new immutable `(epoch, snapshot)` head, and queries pin the
latest published state without locking.  This example runs a small
serving stack under concurrent load:

1. reader threads issue queries through a `QueryCoalescer`, which merges
   concurrently arriving calls into shared `query_batch` passes over one
   pinned snapshot (with an epoch-keyed `ResultCache` in front);
2. a writer thread streams inserts, publishing a new epoch each time;
3. afterwards, a sample of the versioned answers is re-verified against
   brute force over the epoch each answer claims — the MVCC exactness
   contract, checked end to end.

Run:  python examples/concurrent_serving.py [--n 2000] [--dim 8] [--k 8]
      [--readers 4] [--queries 40] [--writes 30]
"""

import argparse
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import QueryCoalescer, QuerySpec, ResultCache, Service
from repro.baselines import rknn_brute_force


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=2000, help="dataset size")
    parser.add_argument("--dim", type=int, default=8, help="dimension")
    parser.add_argument("--k", type=int, default=8, help="neighborhood size")
    parser.add_argument("--readers", type=int, default=4, help="reader threads")
    parser.add_argument("--queries", type=int, default=40,
                        help="queries per reader")
    parser.add_argument("--writes", type=int, default=30,
                        help="inserts streamed by the writer")
    args = parser.parse_args()

    rng = np.random.default_rng(42)
    data = rng.normal(size=(args.n, args.dim))
    service = Service(
        data, backend="kd", engine="rdt",
        defaults=QuerySpec(k=args.k, t=50.0),
    )
    # Epochs recorded at publication time let us verify answers later.
    snapshots = {service.epoch: service.index.snapshot()}
    snapshots_lock = threading.Lock()
    query_pool = rng.normal(size=(16, args.dim))
    records = []
    records_lock = threading.Lock()
    cache = ResultCache()

    print(f"serving {args.n} points (d={args.dim}, k={args.k}) to "
          f"{args.readers} readers while inserting {args.writes} points")

    with QueryCoalescer(service, max_wait=0.002, cache=cache) as front:
        def reader(seed: int) -> None:
            local = np.random.default_rng(seed)
            for _ in range(args.queries):
                query = query_pool[int(local.integers(query_pool.shape[0]))]
                epoch, result = front.query_versioned(query)
                with records_lock:
                    records.append((epoch, query, sorted(result.ids.tolist())))

        def writer() -> None:
            for _ in range(args.writes):
                service.insert(rng.normal(size=args.dim))
                with snapshots_lock:
                    snapshots[service.epoch] = service.index.snapshot()

        with ThreadPoolExecutor(max_workers=args.readers + 1) as pool:
            futures = [pool.submit(reader, 7 + i) for i in range(args.readers)]
            futures.append(pool.submit(writer))
            for future in futures:
                future.result()
        stats = front.stats()

    epochs_served = sorted({epoch for epoch, _, _ in records})
    print(f"final epoch {service.epoch}; answers served from "
          f"{len(epochs_served)} distinct epochs "
          f"({epochs_served[0]}..{epochs_served[-1]})")
    print(f"coalescer: {stats['dispatched_queries']} queries in "
          f"{stats['dispatched_batches']} batched dispatches, "
          f"{stats['coalesced_queries']} coalesced; "
          f"cache: {stats['cache']['hits']} hits, "
          f"{stats['cache']['misses']} misses, "
          f"{stats['cache']['invalidated']} invalidated by epoch churn")

    # Verify a sample of answers against brute force over the snapshot
    # of the epoch each answer claims (all of them at example scale).
    checked = 0
    for epoch, query, ids in records:
        snapshot = snapshots[epoch]
        active = snapshot.active_ids()
        local = rknn_brute_force(snapshot.points[active], args.k, query)
        expected = sorted(int(active[i]) for i in local)
        assert ids == expected, (epoch, ids, expected)
        checked += 1
    print(f"verified {checked}/{len(records)} concurrent answers exact "
          f"for their epoch: True")


if __name__ == "__main__":
    main()
